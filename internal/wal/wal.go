// Package wal is the serving layer's durability subsystem: an
// append-only write-ahead log with CRC-framed records and segment
// rotation (Log), a snapshot/compaction layer on top of it (Store),
// atomic file replacement (WriteAtomic) and versioned model-checkpoint
// management (Checkpoints).
//
// The contract mirrors classic database recovery: every state change is
// appended (and, under SyncAlways, fsynced) to the log before it is
// acknowledged, a snapshot periodically captures the full state at a
// segment boundary, and recovery is "load the newest valid snapshot,
// then replay the WAL suffix". A crash mid-append leaves a torn tail
// that recovery truncates instead of failing — the log never loses an
// acknowledged record to repair an unacknowledged one.
//
// The package is dependency-free (standard library only) and knows
// nothing about sessions or models; payloads are opaque bytes.
package wal

import (
	"errors"
	"time"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives kill -9 and power loss. Appends serialize on the fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncInterval):
	// a crash loses at most one interval of acknowledged records.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: fastest, survives
	// process crashes (the data reached the kernel) but not power loss.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and
// "never" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, errors.New("wal: unknown fsync policy " + s + " (use always, interval or never)")
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// Options tunes a Log (and the Store wrapping it). The zero value is
// usable: SyncAlways, 64 MiB segments.
type Options struct {
	// SegmentBytes caps a segment; an append that crosses the cap seals
	// the segment and rotates to a fresh one (0 means 64 MiB).
	SegmentBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (0 means 100ms).
	SyncInterval time.Duration

	// OnAppend, if non-nil, observes every appended record's framed size
	// in bytes (instrumentation hook; called under the log mutex — keep
	// it cheap, e.g. a counter increment).
	OnAppend func(bytes int)
	// OnSync, if non-nil, observes every fsync's duration.
	OnSync func(took time.Duration)

	// SegmentPrefix names segment files <prefix><seq>.log (empty means
	// "wal-"). Streams with different prefixes coexist in one directory
	// without seeing each other's files — the sharded layout puts every
	// shard's stream in the same per-tenant dir under its own prefix.
	SegmentPrefix string
	// SnapshotPrefix names snapshot files <prefix><seq>.snap (empty
	// means "snap-").
	SnapshotPrefix string
}

const (
	defaultSegmentBytes   = 64 << 20
	defaultSyncInterval   = 100 * time.Millisecond
	defaultSegmentPrefix  = "wal-"
	defaultSnapshotPrefix = "snap-"
)

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = defaultSyncInterval
	}
	if o.SegmentPrefix == "" {
		o.SegmentPrefix = defaultSegmentPrefix
	}
	if o.SnapshotPrefix == "" {
		o.SnapshotPrefix = defaultSnapshotPrefix
	}
	return o
}
