package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Replication export surface. A warm standby replicates a WAL directory
// by copying files, and the only file a writer ever mutates in place is
// the highest-sequence segment of each stream — the active segment.
// Everything else (sealed segments, committed snapshots, checkpoint
// files) is immutable by name: once a name exists its bytes never
// change, so a follower can fetch it once and trust it forever. The
// helpers here give a shipper the ship-sealed-only listing and give a
// follower read-only verification and replay, without ever opening a
// mutating Log (Open truncates torn tails; a follower must not rewrite
// the primary's files).

// StreamFile describes one replicable file within a WAL directory.
type StreamFile struct {
	// Name is the file's base name within the directory.
	Name string `json:"name"`
	Size int64  `json:"size"`
	// Mutable marks names whose bytes may change in place
	// (MANIFEST.json, the remap staging file): a follower re-fetches
	// these every round instead of trusting a cached copy.
	Mutable bool `json:"mutable,omitempty"`
}

// splitStreamName splits <prefix><seq><ext> into its stream prefix and
// sequence number, for ext ".log" or ".snap". Names without a trailing
// digit run (e.g. the remap staging file "remap.snap") do not match.
func splitStreamName(name, ext string) (prefix string, seq uint64, ok bool) {
	if !strings.HasSuffix(name, ext) {
		return "", 0, false
	}
	base := name[:len(name)-len(ext)]
	i := len(base)
	for i > 0 && base[i-1] >= '0' && base[i-1] <= '9' {
		i--
	}
	if i == len(base) {
		return "", 0, false
	}
	n, err := strconv.ParseUint(base[i:], 10, 64)
	if err != nil || n == 0 {
		return "", 0, false
	}
	return base[:i], n, true
}

// SplitSegmentName splits a segment file name <prefix><seq>.log,
// reporting ok=false for non-segment names.
func SplitSegmentName(name string) (prefix string, seq uint64, ok bool) {
	return splitStreamName(name, ".log")
}

// SplitSnapshotName splits a snapshot file name <prefix><seq>.snap,
// reporting ok=false for non-snapshot names (including RemapFile).
func SplitSnapshotName(name string) (prefix string, seq uint64, ok bool) {
	return splitStreamName(name, ".snap")
}

// SegmentFileName returns the file name of stream prefix's segment seq.
func SegmentFileName(prefix string, seq uint64) string { return segmentName(prefix, seq) }

// SnapshotFileName returns the file name of stream prefix's snapshot
// seq.
func SnapshotFileName(prefix string, seq uint64) string { return snapshotName(prefix, seq) }

// ListSegmentSeqs returns the stream's segment sequence numbers in
// ascending order.
func ListSegmentSeqs(dir, prefix string) ([]uint64, error) { return listSegments(dir, prefix) }

// ListSnapshotSeqs returns the stream's snapshot sequence numbers in
// ascending order.
func ListSnapshotSeqs(dir, prefix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSnapshotSeq(e.Name(), prefix); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// SealedStreamFiles lists the replicable files of a WAL directory: every
// snapshot, the layout manifest and remap staging file when present,
// and every sealed segment — each stream's highest-sequence segment is
// the active one the writer is still appending to, and is excluded
// (ship-sealed-only: the standby's tail beyond the newest shipped
// segment is recovered by feeder redelivery through dedupe, exactly as
// a restart recovers it from the unreplicated active segment).
// Temporary files (*.tmp staging of atomic writes) are skipped. The
// listing is sorted by name.
func SealedStreamFiles(dir string) ([]StreamFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	active := make(map[string]uint64) // segment prefix -> highest seq
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if prefix, seq, ok := SplitSegmentName(e.Name()); ok && seq > active[prefix] {
			active[prefix] = seq
		}
	}
	var out []StreamFile
	for _, e := range ents {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		name := e.Name()
		var mutable bool
		switch {
		case name == ManifestName || name == RemapFile:
			mutable = true
		default:
			if prefix, seq, ok := SplitSegmentName(name); ok {
				if seq == active[prefix] {
					continue // the active segment never ships
				}
			} else if _, _, ok := SplitSnapshotName(name); !ok {
				continue // not a stream file
			}
		}
		fi, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between ReadDir and stat
			}
			return nil, err
		}
		out = append(out, StreamFile{Name: name, Size: fi.Size(), Mutable: mutable})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// VerifySegmentFile validates a sealed segment: every byte must belong
// to a whole, checksum-valid record. Unlike recovery of the active
// segment, a torn tail here is an error — sealed segments were closed
// on a record boundary, so any tear means a corrupt or truncated ship.
func VerifySegmentFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(b) {
		_, n, err := decodeRecord(b[off:])
		if err != nil {
			return fmt.Errorf("wal: %s: torn record at offset %d", filepath.Base(path), off)
		}
		off += n
	}
	return nil
}

// VerifySnapshotFile validates a snapshot (or remap staging) file: one
// whole checksum-valid record spanning the entire file.
func VerifySnapshotFile(path string) error {
	if _, err := ReadStateFile(path); err != nil {
		return fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
	}
	return nil
}

// VerifyStreamFile dispatches verification by file name: segments get
// the full record-chain scan, snapshot-framed files the single-record
// check. Names with no framed format (MANIFEST.json) verify trivially.
func VerifyStreamFile(path string) error {
	name := filepath.Base(path)
	if _, _, ok := SplitSegmentName(name); ok {
		return VerifySegmentFile(path)
	}
	if _, _, ok := SplitSnapshotName(name); ok {
		return VerifySnapshotFile(path)
	}
	if name == RemapFile {
		return VerifySnapshotFile(path)
	}
	return nil
}

// ReplaySegmentFile streams a sealed segment's records through fn in
// append order, read-only. A torn record is an error (see
// VerifySegmentFile); fn's payload is only valid during the call.
func ReplaySegmentFile(path string, fn func(payload []byte) error) (int, error) {
	n, torn, err := replaySegment(path, fn)
	if err != nil {
		return n, err
	}
	if torn {
		return n, fmt.Errorf("wal: %s: torn record in sealed segment", filepath.Base(path))
	}
	return n, nil
}

// ReadSnapshotFile loads and checksum-validates one snapshot file's
// payload without going through a Store.
func ReadSnapshotFile(path string) ([]byte, error) { return ReadStateFile(path) }

// RestoreStream rebuilds one stream's state read-only: restore is
// called at most once with the newest valid snapshot's payload, then
// replay is called for every record of each segment with sequence >=
// the snapshot's, in append order. Unlike Store.Recover it never
// mutates the directory (no torn-tail truncation, no pruning) and a
// torn record anywhere is an error — a replicated directory holds only
// sealed, complete files. A standby uses this to rebuild from shipped
// files after a replication gap, converging on the same state a
// primary restart would.
func RestoreStream(dir, segPrefix, snapPrefix string, restore func(snapshot []byte) error, replay func(record []byte) error) (RecoverStats, error) {
	var st RecoverStats
	snaps, err := ListSnapshotSeqs(dir, snapPrefix)
	if err != nil {
		return st, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := ReadSnapshotFile(filepath.Join(dir, snapshotName(snapPrefix, snaps[i])))
		if err != nil {
			continue // corrupt: fall back to an older snapshot
		}
		if err := restore(payload); err != nil {
			return st, err
		}
		st.SnapshotSeq = snaps[i]
		break
	}
	seqs, err := listSegments(dir, segPrefix)
	if err != nil {
		return st, err
	}
	for _, seq := range seqs {
		if seq < st.SnapshotSeq {
			continue
		}
		n, err := ReplaySegmentFile(filepath.Join(dir, segmentName(segPrefix, seq)), replay)
		st.Records += n
		st.Segments++
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
