package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// replayAll opens a store on dir and collects every replayed record.
func replayAll(t *testing.T, dir string, opt Options) (snapshot []byte, records [][]byte, st RecoverStats) {
	t.Helper()
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err = s.Recover(
		func(b []byte) error { snapshot = append([]byte(nil), b...); return nil },
		func(b []byte) error { records = append(records, append([]byte(nil), b...)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot, records, st
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d payload with some bytes", i))
	}
	return out
}

func TestLogAppendReplayRoundtrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			opt := Options{Sync: sync, SyncInterval: time.Millisecond}
			l, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := payloads(20)
			for _, p := range want {
				if err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, got, st := replayAll(t, dir, opt)
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			if st.TornTail {
				t.Fatal("clean close reported a torn tail")
			}
		})
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 128, Sync: SyncNever}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(40)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Seq() < 2 {
		t.Fatalf("no rotation happened: seq=%d", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir, defaultSegmentPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 2 {
		t.Fatalf("expected multiple segments, got %v", seqs)
	}
	_, got, _ := replayAll(t, dir, opt)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}
}

// TestCrashMatrixTornTail is the crash-recovery property test: a log
// with N records whose last segment is truncated at EVERY byte offset
// within its final record must recover to exactly the N-1 record
// prefix — never an error, never a phantom record.
func TestCrashMatrixTornTail(t *testing.T) {
	src := t.TempDir()
	opt := Options{Sync: SyncNever}
	l, err := Open(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(8)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(src, segmentName(defaultSegmentPrefix, 1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := recordHeaderSize + len(want[len(want)-1])
	lastStart := len(whole) - lastLen

	for cut := lastStart; cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(defaultSegmentPrefix, 1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, st := replayAll(t, dir, opt)
		if len(got) != len(want)-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), len(want)-1)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut=%d: record %d corrupted by recovery", cut, i)
			}
		}
		if cut > lastStart && !st.TornTail {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		// Open already truncated the torn tail; the log must accept new
		// appends on the clean boundary.
		l2, err := Open(dir, opt)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if err := l2.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, got2, _ := replayAll(t, dir, opt)
		if len(got2) != len(want) || string(got2[len(got2)-1]) != "post-crash" {
			t.Fatalf("cut=%d: post-recovery append not replayed (%d records)", cut, len(got2))
		}
	}
}

// TestCrashMatrixBitFlip: flipping any single bit of the final record
// must likewise drop exactly that record.
func TestCrashMatrixBitFlip(t *testing.T) {
	src := t.TempDir()
	opt := Options{Sync: SyncNever}
	l, err := Open(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(4)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(src, segmentName(defaultSegmentPrefix, 1)))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(whole) - (recordHeaderSize + len(want[len(want)-1]))
	for off := lastStart; off < len(whole); off++ {
		dir := t.TempDir()
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, segmentName(defaultSegmentPrefix, 1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, _ := replayAll(t, dir, opt)
		// A flipped length byte can shrink the record into a shorter
		// valid-length frame, but the checksum must still reject it.
		if len(got) != len(want)-1 {
			t.Fatalf("off=%d: recovered %d records, want %d", off, len(got), len(want)-1)
		}
	}
}

func TestStoreSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sync: SyncNever, SegmentBytes: 256}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	pre := payloads(10)
	for _, p := range pre {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte(`{"open":10}`)
	if err := s.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	post := payloads(5)
	for i, p := range post {
		post[i] = append([]byte("post-"), p...)
		if err := s.Append(post[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap, got, st := replayAll(t, dir, opt)
	// Pre-snapshot segments must be gone (compaction).
	seqs, err := listSegments(dir, defaultSegmentPrefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if seq < st.SnapshotSeq {
			t.Fatalf("segment %d survived compaction (snapshot anchor %d)", seq, st.SnapshotSeq)
		}
	}
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot payload %q, want %q", snap, state)
	}
	if st.SnapshotSeq == 0 {
		t.Fatal("recovery did not anchor to a snapshot")
	}
	if len(got) != len(post) {
		t.Fatalf("replayed %d post-snapshot records, want %d", len(got), len(post))
	}
	for i := range post {
		if !bytes.Equal(got[i], post[i]) {
			t.Fatalf("post-snapshot record %d mismatch", i)
		}
	}
}

// TestStoreCrashBetweenRotateAndCommit: a snapshot that rotated but
// never committed must fall back to the previous snapshot (or empty
// state) and replay everything after it.
func TestStoreCrashBetweenRotateAndCommit(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sync: SyncNever}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(6)
	for _, p := range want[:4] {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.BeginSnapshot(); err != nil { // crash before CommitSnapshot
		t.Fatal(err)
	}
	for _, p := range want[4:] {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap, got, st := replayAll(t, dir, opt)
	if snap != nil || st.SnapshotSeq != 0 {
		t.Fatalf("phantom snapshot recovered: %q (seq %d)", snap, st.SnapshotSeq)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want all %d", len(got), len(want))
	}
}

// TestStoreCorruptSnapshotFallsBack: a snapshot whose bytes rot must be
// skipped in favor of the older one, with the longer WAL suffix
// replayed on top.
func TestStoreCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sync: SyncNever}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	// Second snapshot, then corrupt it in place. Pruning retains the
	// previous snapshot AND every segment since its anchor, so recovery
	// must skip the rotten snapshot, restore "good", and replay the full
	// suffix — landing on the same current state.
	seq, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CommitSnapshot(seq, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(defaultSnapshotPrefix, seq))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, got, _ := replayAll(t, dir, opt)
	if string(snap) == "newer" {
		t.Fatal("corrupt snapshot was restored")
	}
	if string(snap) != "good" {
		t.Fatalf("fallback restored %q, want %q", snap, "good")
	}
	// Only records after the good snapshot's anchor that still exist on
	// disk replay; "c" (after the corrupt snapshot) must be among them.
	found := false
	for _, r := range got {
		if string(r) == "c" {
			found = true
		}
	}
	if !found {
		t.Fatal("record appended after the corrupt snapshot was lost")
	}
}

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("content %q, want v1", b)
	}
	// A failing write callback must leave the previous file intact and
	// no temp litter behind.
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half")
		return io.ErrUnexpectedEOF
	})
	if err == nil {
		t.Fatal("error from write callback was swallowed")
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed write clobbered target: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

func TestCheckpointsSaveRetainRollback(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Current() != "" {
		t.Fatal("fresh checkpoint dir has a current")
	}
	save := func(content string) string {
		t.Helper()
		p, err := c.Save(func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := save("one")
	p2 := save("two")
	p3 := save("three")
	if c.Current() != p3 {
		t.Fatalf("current %q, want %q", c.Current(), p3)
	}
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatal("retain bound did not evict the oldest checkpoint")
	}
	if c.Count() != 2 {
		t.Fatalf("history length %d, want 2", c.Count())
	}

	// Reopen reads the manifest back.
	c2, err := OpenCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Current() != p3 {
		t.Fatalf("reopened current %q, want %q", c2.Current(), p3)
	}

	// Rollback drops the bad head and lands on the previous checkpoint.
	prev, err := c2.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if prev != p2 {
		t.Fatalf("rollback landed on %q, want %q", prev, p2)
	}
	if b, _ := os.ReadFile(prev); string(b) != "two" {
		t.Fatalf("rollback target content %q, want two", b)
	}
	if _, err := os.Stat(p3); !os.IsNotExist(err) {
		t.Fatal("rolled-back checkpoint file not deleted")
	}
	// Rolling back past the history empties it.
	if p, err := c2.Rollback(); err != nil || p != "" {
		t.Fatalf("final rollback = %q, %v; want empty", p, err)
	}
	if p, err := c2.Rollback(); err != nil || p != "" {
		t.Fatalf("rollback on empty history = %q, %v; want empty", p, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestLogInstrumentationHooks(t *testing.T) {
	dir := t.TempDir()
	var appends, appendBytes, syncs int
	opt := Options{
		Sync:     SyncAlways,
		OnAppend: func(n int) { appends++; appendBytes += n },
		OnSync:   func(time.Duration) { syncs++ },
	}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("hello")
	if err := l.Append(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if appends != 1 || appendBytes != recordHeaderSize+len(p) {
		t.Fatalf("OnAppend saw %d appends / %d bytes", appends, appendBytes)
	}
	if syncs < 1 {
		t.Fatal("OnSync never fired under SyncAlways")
	}
	if l.Append(p) != ErrClosed {
		t.Fatal("append after Close did not fail with ErrClosed")
	}
}
