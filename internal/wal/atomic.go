package wal

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic replaces the file at path so a crash at any instant
// leaves either the old complete file or the new complete file — never
// a truncated hybrid. The write callback streams the content; it goes
// to a temp file in the same directory, which is fsynced, renamed over
// path, and made durable with a directory fsync. On any error the temp
// file is removed and path is untouched.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
