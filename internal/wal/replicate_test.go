package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fillStream opens a store with a tiny segment cap, appends enough
// records to rotate a few times, snapshots once mid-way, and closes.
func fillStream(t *testing.T, dir string, opt Options) {
	t.Helper()
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			if err := s.Snapshot([]byte("snapshot-at-10")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSealedStreamFilesExcludesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 64, Sync: SyncNever}
	fillStream(t, dir, opt)
	if err := SaveManifest(dir, Manifest{Version: ManifestVersion, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	// Drop a staging temp file: it must never ship.
	if err := os.WriteFile(filepath.Join(dir, "snap-999.snap.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	segs, err := ListSegmentSeqs(dir, "wal-")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments to make the test meaningful, got %d", len(segs))
	}
	activeName := SegmentFileName("wal-", segs[len(segs)-1])

	files, err := SealedStreamFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StreamFile{}
	for _, f := range files {
		byName[f.Name] = f
	}
	if _, ok := byName[activeName]; ok {
		t.Fatalf("active segment %s must not be listed", activeName)
	}
	for _, seq := range segs[:len(segs)-1] {
		name := SegmentFileName("wal-", seq)
		if _, ok := byName[name]; !ok {
			t.Fatalf("sealed segment %s missing from listing %v", name, files)
		}
	}
	mf, ok := byName[ManifestName]
	if !ok || !mf.Mutable {
		t.Fatalf("manifest missing or not mutable: %+v", byName)
	}
	snaps, err := ListSnapshotSeqs(dir, "snap-")
	if err != nil || len(snaps) == 0 {
		t.Fatalf("want a snapshot, got %v err=%v", snaps, err)
	}
	if _, ok := byName[SnapshotFileName("snap-", snaps[0])]; !ok {
		t.Fatalf("snapshot missing from listing %v", files)
	}
	if _, ok := byName["snap-999.snap.tmp"]; ok {
		t.Fatal("temp file must not be listed")
	}
	for _, f := range files {
		fi, err := os.Stat(filepath.Join(dir, f.Name))
		if err != nil || fi.Size() != f.Size {
			t.Fatalf("size mismatch for %s: %+v vs %v (%v)", f.Name, f.Size, fi, err)
		}
	}
}

func TestVerifyStreamFile(t *testing.T) {
	dir := t.TempDir()
	fillStream(t, dir, Options{SegmentBytes: 64, Sync: SyncNever})
	files, err := SealedStreamFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := VerifyStreamFile(filepath.Join(dir, f.Name)); err != nil {
			t.Fatalf("verify %s: %v", f.Name, err)
		}
	}

	// A truncated sealed segment must fail verification.
	segs, _ := ListSegmentSeqs(dir, "wal-")
	segPath := filepath.Join(dir, SegmentFileName("wal-", segs[0]))
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), SegmentFileName("wal-", 1))
	if err := os.WriteFile(torn, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySegmentFile(torn); err == nil {
		t.Fatal("truncated segment passed verification")
	}
	// A bit flip must fail too.
	flip := append([]byte(nil), b...)
	flip[len(flip)-1] ^= 0x40
	if err := os.WriteFile(torn, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySegmentFile(torn); err == nil {
		t.Fatal("corrupt segment passed verification")
	}
	// A corrupt snapshot must fail.
	snaps, _ := ListSnapshotSeqs(dir, "snap-")
	sb, err := os.ReadFile(filepath.Join(dir, SnapshotFileName("snap-", snaps[0])))
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)-1] ^= 0x01
	badSnap := filepath.Join(t.TempDir(), SnapshotFileName("snap-", 1))
	if err := os.WriteFile(badSnap, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(badSnap); err == nil {
		t.Fatal("corrupt snapshot passed verification")
	}
}

// TestRestoreStreamMatchesRecover replays a copied directory read-only
// and checks it converges on the same state Store.Recover rebuilds.
func TestRestoreStreamMatchesRecover(t *testing.T) {
	dir := t.TempDir()
	fillStream(t, dir, Options{SegmentBytes: 64, Sync: SyncNever})

	replayed := func(restoreStream bool) (snap string, recs []string) {
		if restoreStream {
			_, err := RestoreStream(dir, "wal-", "snap-",
				func(b []byte) error { snap = string(b); return nil },
				func(b []byte) error { recs = append(recs, string(b)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			return
		}
		s, err := OpenStore(dir, Options{SegmentBytes: 64, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_, err = s.Recover(
			func(b []byte) error { snap = string(b); return nil },
			func(b []byte) error { recs = append(recs, string(b)); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	snapRO, recsRO := replayed(true)
	snapRW, recsRW := replayed(false)
	if snapRO != snapRW || !reflect.DeepEqual(recsRO, recsRW) {
		t.Fatalf("read-only restore diverged: snap %q vs %q, recs %v vs %v", snapRO, snapRW, recsRO, recsRW)
	}
	if snapRO == "" || len(recsRO) == 0 {
		t.Fatalf("restore saw nothing: snap=%q recs=%d", snapRO, len(recsRO))
	}
}

func TestSplitStreamNames(t *testing.T) {
	if p, seq, ok := SplitSegmentName("wal-shard-03-0000000000000007.log"); !ok || p != "wal-shard-03-" || seq != 7 {
		t.Fatalf("got %q %d %v", p, seq, ok)
	}
	if _, _, ok := SplitSnapshotName(RemapFile); ok {
		t.Fatal("remap.snap must not parse as a stream snapshot")
	}
	if _, _, ok := SplitSegmentName("MANIFEST.json"); ok {
		t.Fatal("manifest must not parse as a segment")
	}
}

// TestOpenStoreSkipsToSnapshotAnchor: a directory whose newest snapshot
// anchors ahead of every segment (the replicated-standby shape: the
// primary's post-anchor segments were active or pruned and never
// shipped) must not accept appends below the anchor — Recover would
// ignore them. OpenStore jumps the log to the anchor so post-promotion
// records stay visible.
func TestOpenStoreSkipsToSnapshotAnchor(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 64, Sync: SyncNever}
	// Only a shipped snapshot, anchored at seq 7.
	if err := WriteStateFile(filepath.Join(dir, snapshotName("snap-", 7)), []byte("state-at-7")); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.log.Seq(); got != 7 {
		t.Fatalf("active segment %d, want the snapshot anchor 7", got)
	}
	if err := s.Append([]byte("post-promotion")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var snap string
	var recs []string
	st, err := s2.Recover(
		func(b []byte) error { snap = string(b); return nil },
		func(b []byte) error { recs = append(recs, string(b)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSeq != 7 || snap != "state-at-7" {
		t.Fatalf("recovered snapshot %d %q", st.SnapshotSeq, snap)
	}
	if len(recs) != 1 || recs[0] != "post-promotion" {
		t.Fatalf("recovered records %v, want the post-anchor append", recs)
	}
}
