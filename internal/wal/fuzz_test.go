package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRecordDecode throws random bytes and mutated valid frames at the
// record decoder: it must never panic, never report a frame larger than
// its input (over-read), and every accepted frame must re-encode to the
// exact bytes it was decoded from.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(appendRecord(nil, []byte("hello wal")))
	f.Add(appendRecord(appendRecord(nil, []byte("a")), []byte("bb")))
	// A frame whose length field claims far more than the buffer holds.
	huge := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(huge, 1<<31)
	f.Add(huge)
	// A valid frame with a flipped payload byte (checksum must catch it).
	mut := appendRecord(nil, []byte("mutate me"))
	mut[len(mut)-1] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := decodeRecord(b)
		if err != nil {
			if err != ErrTornRecord {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < recordHeaderSize || n > len(b) {
			t.Fatalf("decoded frame size %d out of bounds (input %d)", n, len(b))
		}
		if len(payload) != n-recordHeaderSize {
			t.Fatalf("payload length %d inconsistent with frame size %d", len(payload), n)
		}
		if re := appendRecord(nil, payload); !bytes.Equal(re, b[:n]) {
			t.Fatal("accepted frame does not re-encode to its input bytes")
		}
	})
}
