package preprocess

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ucad/ucad/internal/session"
)

// Property: Filter partitions its input (kept + dropped = input, no
// session lost or duplicated).
func TestFilterPartitionProperty(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "deny-evil", Effect: Deny, Users: []string{"evil"}},
		{Name: "deny-fast", Effect: Deny, GapBelow: 1},
	}}
	f := func(users []uint8) bool {
		var sessions []*session.Session
		for _, u := range users {
			name := "ok"
			if u%3 == 0 {
				name = "evil"
			}
			sessions = append(sessions, &session.Session{
				User: name,
				Ops:  []session.Operation{{SQL: "SELECT 1 FROM t"}},
			})
		}
		kept, dropped := p.Filter(sessions)
		if len(kept)+len(dropped) != len(sessions) {
			return false
		}
		seen := map[*session.Session]bool{}
		for _, s := range append(kept, dropped...) {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		for _, s := range kept {
			if s.User == "evil" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DBSCAN labels are Noise or dense cluster ids 0..k-1, and
// every non-noise cluster has at least one core point.
func TestDBSCANLabelValidity(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		pts := make([]float64, len(raw))
		for i, r := range raw {
			pts[i] = float64(r)
		}
		const eps, minPts = 3.0, 3
		labels := DBSCAN(len(pts), func(i, j int) float64 {
			d := pts[i] - pts[j]
			if d < 0 {
				d = -d
			}
			return d
		}, eps, minPts)
		maxLabel := -1
		for _, l := range labels {
			if l < Noise {
				return false
			}
			if l > maxLabel {
				maxLabel = l
			}
		}
		// Labels are contiguous from 0.
		seen := make([]bool, maxLabel+1)
		for _, l := range labels {
			if l >= 0 {
				seen[l] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clean never outputs more sessions than it was given and
// never invents sessions.
func TestCleanOutputSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(raw [][]uint8) bool {
		var sessions []*session.Session
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			s := &session.Session{}
			for _, k := range r {
				s.Ops = append(s.Ops, session.Operation{Key: int(k)%10 + 1})
			}
			sessions = append(sessions, s)
		}
		kept, rep := Clean(sessions, DefaultCleanConfig(), rng)
		if len(kept) > len(sessions) || rep.Output != len(kept) {
			return false
		}
		in := map[*session.Session]bool{}
		for _, s := range sessions {
			in[s] = true
		}
		for _, s := range kept {
			if !in[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
