package preprocess

// Noise is the cluster label DBSCAN assigns to outlier points.
const Noise = -1

// DBSCAN clusters n items given a pairwise distance function, a
// neighborhood radius eps and the core-point density threshold minPts
// (which counts the point itself, as in the original algorithm). It
// returns a label per item: 0..k-1 for clusters, Noise for outliers.
func DBSCAN(n int, dist func(i, j int) float64, eps float64, minPts int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	// Precompute neighborhoods; O(n²) distance evaluations.
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var d float64
			if i != j {
				d = dist(i, j)
			}
			if d <= eps {
				neighbors[i] = append(neighbors[i], j)
				if i != j {
					neighbors[j] = append(neighbors[j], i)
				}
			}
		}
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		if len(neighbors[i]) < minPts {
			labels[i] = Noise
			continue
		}
		// Expand a new cluster from core point i.
		labels[i] = cluster
		queue := append([]int(nil), neighbors[i]...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == Noise {
				labels[q] = cluster // border point
			}
			if labels[q] != -2 {
				continue
			}
			labels[q] = cluster
			if len(neighbors[q]) >= minPts {
				queue = append(queue, neighbors[q]...)
			}
		}
		cluster++
	}
	return labels
}
