package preprocess

import (
	"math/rand"
	"sort"

	"github.com/ucad/ucad/internal/session"
)

// CleanConfig controls the clustering-based noise removal (§5.1).
type CleanConfig struct {
	// NGram is the gram size for session profiling (paper cites n-gram
	// features; 2 is the default).
	NGram int
	// Eps is the DBSCAN neighborhood radius in Jaccard distance.
	Eps float64
	// MinPts is DBSCAN's core-point threshold (counting the point).
	MinPts int
	// SmallClusterRatio drops clusters smaller than this fraction of the
	// median cluster size ("significantly smaller than the median").
	SmallClusterRatio float64
	// ShortSessionRatio drops sessions shorter than this fraction of
	// their cluster's average length ("too short to reveal the
	// contextual intent").
	ShortSessionRatio float64
	// KeepNoise retains DBSCAN noise points instead of dropping them.
	KeepNoise bool
}

// DefaultCleanConfig returns the defaults used throughout the
// experiments.
func DefaultCleanConfig() CleanConfig {
	return CleanConfig{
		NGram:             2,
		Eps:               0.6,
		MinPts:            3,
		SmallClusterRatio: 0.25,
		ShortSessionRatio: 0.3,
	}
}

// CleanReport describes what Clean removed and why.
type CleanReport struct {
	Input           int
	Clusters        int
	NoiseDropped    int
	SmallClusters   int
	SmallDropped    int
	ShortDropped    int
	BalancedSampled int // sessions removed by under-sampling
	Output          int
	ClusterSizes    []int
	MedianCluster   int
}

// Clean applies the paper's clustering-based purification to tokenized
// sessions: DBSCAN over n-gram Jaccard similarity, random
// under-sampling of large clusters to the median size, removal of rare
// (small) clusters, and removal of sessions much shorter than their
// cluster's average length. rng drives the under-sampling.
func Clean(sessions []*session.Session, cfg CleanConfig, rng *rand.Rand) ([]*session.Session, CleanReport) {
	rep := CleanReport{Input: len(sessions)}
	if len(sessions) == 0 {
		return nil, rep
	}
	profiles := make([]map[string]struct{}, len(sessions))
	for i, s := range sessions {
		profiles[i] = NGramSet(s.Keys(), cfg.NGram)
	}
	labels := DBSCAN(len(sessions), func(i, j int) float64 {
		return JaccardDistance(profiles[i], profiles[j])
	}, cfg.Eps, cfg.MinPts)

	clusters := make(map[int][]int)
	for i, l := range labels {
		if l == Noise {
			if cfg.KeepNoise {
				clusters[len(sessions)+i] = []int{i} // singleton pseudo-cluster
			} else {
				rep.NoiseDropped++
			}
			continue
		}
		clusters[l] = append(clusters[l], i)
	}
	rep.Clusters = len(clusters)
	if len(clusters) == 0 {
		return nil, rep
	}

	sizes := make([]int, 0, len(clusters))
	for _, members := range clusters {
		sizes = append(sizes, len(members))
	}
	sort.Ints(sizes)
	rep.ClusterSizes = sizes
	median := sizes[len(sizes)/2]
	rep.MedianCluster = median

	var kept []*session.Session
	for _, members := range sortedClusters(clusters) {
		// Drop rare-pattern clusters.
		if float64(len(members)) < cfg.SmallClusterRatio*float64(median) {
			rep.SmallClusters++
			rep.SmallDropped += len(members)
			continue
		}
		// Under-sample large clusters to the median size for balance.
		if len(members) > median {
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			rep.BalancedSampled += len(members) - median
			members = members[:median]
		}
		// Drop sessions much shorter than the cluster average.
		var total int
		for _, i := range members {
			total += len(sessions[i].Ops)
		}
		avg := float64(total) / float64(len(members))
		for _, i := range members {
			if float64(len(sessions[i].Ops)) < cfg.ShortSessionRatio*avg {
				rep.ShortDropped++
				continue
			}
			kept = append(kept, sessions[i])
		}
	}
	rep.Output = len(kept)
	return kept, rep
}

// sortedClusters returns cluster member lists in deterministic label
// order so Clean is reproducible for a fixed rng.
func sortedClusters(clusters map[int][]int) [][]int {
	labels := make([]int, 0, len(clusters))
	for l := range clusters {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	out := make([][]int, len(labels))
	for i, l := range labels {
		out[i] = clusters[l]
	}
	return out
}
