// Package preprocess implements the paper's data preprocessing module
// (§5.1): attribute-based access-control filtering of known attack
// patterns, n-gram session profiling with Jaccard similarity, DBSCAN
// clustering, pattern balancing and short-session removal.
package preprocess

import (
	"time"

	"github.com/ucad/ucad/internal/session"
)

// Effect is the outcome a policy rule assigns to matching sessions.
type Effect int

const (
	// Allow marks a rule that grants access to matching operations.
	Allow Effect = iota
	// Deny marks a rule whose match filters the session out.
	Deny
)

// Rule is one attribute-based access-control rule. Zero-valued fields
// are wildcards. The attribute set follows the paper: user identity,
// access address, access time, target table and the interval between
// consecutive operations.
type Rule struct {
	Name   string
	Effect Effect

	// Users, Addrs and Tables are whitelists of acceptable attribute
	// values (empty = any).
	Users  []string
	Addrs  []string
	Tables []string

	// HourFrom/HourTo restrict the permitted hour-of-day window
	// [HourFrom, HourTo); both zero means any time. Windows may wrap
	// midnight (HourFrom > HourTo).
	HourFrom, HourTo int

	// GapBelow, when positive, matches sessions containing two
	// consecutive operations closer together than this duration — the
	// "interval between two consecutive operations" attribute used to
	// catch machine-speed access.
	GapBelow time.Duration
}

// matchValue reports whether v is acceptable under whitelist ws.
func matchValue(ws []string, v string) bool {
	if len(ws) == 0 {
		return true
	}
	for _, w := range ws {
		if w == v || w == "*" {
			return true
		}
	}
	return false
}

func (r *Rule) matchHour(t time.Time) bool {
	if r.HourFrom == 0 && r.HourTo == 0 {
		return true
	}
	h := t.Hour()
	if r.HourFrom <= r.HourTo {
		return h >= r.HourFrom && h < r.HourTo
	}
	return h >= r.HourFrom || h < r.HourTo // wraps midnight
}

// matchOp reports whether one operation satisfies the rule's per-op
// attributes.
func (r *Rule) matchOp(s *session.Session, op *session.Operation) bool {
	return matchValue(r.Users, s.User) &&
		matchValue(r.Addrs, s.Addr) &&
		matchValue(r.Tables, op.Table()) &&
		r.matchHour(op.Time)
}

// matchGap reports whether the session violates the GapBelow constraint.
func (r *Rule) matchGap(s *session.Session) bool {
	if r.GapBelow <= 0 {
		return false
	}
	for i := 1; i < len(s.Ops); i++ {
		if s.Ops[i].Time.Sub(s.Ops[i-1].Time) < r.GapBelow {
			return true
		}
	}
	return false
}

// Policy is an ordered set of rules with paper semantics: a session is
// filtered out when it matches any deny rule or, if allow rules exist,
// when any of its operations is not covered by an allow rule.
type Policy struct {
	Rules []Rule
}

// Evaluate reports whether the session passes the policy; when it does
// not, the name of the decisive rule (or "uncovered-operation") is
// returned.
func (p *Policy) Evaluate(s *session.Session) (ok bool, reason string) {
	hasAllow := false
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Effect == Allow {
			hasAllow = true
			continue
		}
		// Deny: any op matching the rule's attributes, or a gap
		// violation, filters the session.
		if r.GapBelow > 0 && matchValue(r.Users, s.User) && matchValue(r.Addrs, s.Addr) && r.matchGap(s) {
			return false, r.Name
		}
		for j := range s.Ops {
			if r.GapBelow > 0 {
				continue
			}
			if r.matchOp(s, &s.Ops[j]) {
				return false, r.Name
			}
		}
	}
	if !hasAllow {
		return true, ""
	}
	for j := range s.Ops {
		covered := false
		for i := range p.Rules {
			r := &p.Rules[i]
			if r.Effect == Allow && r.GapBelow == 0 && r.matchOp(s, &s.Ops[j]) {
				covered = true
				break
			}
		}
		if !covered {
			return false, "uncovered-operation"
		}
	}
	return true, ""
}

// Filter partitions sessions into those passing the policy and those
// filtered out.
func (p *Policy) Filter(sessions []*session.Session) (kept, dropped []*session.Session) {
	for _, s := range sessions {
		if ok, _ := p.Evaluate(s); ok {
			kept = append(kept, s)
		} else {
			dropped = append(dropped, s)
		}
	}
	return kept, dropped
}
