package preprocess

// NGramSet profiles a key sequence as the set of its n-grams (§5.1).
// Each gram is encoded as a comparable string of the n key values.
func NGramSet(keys []int, n int) map[string]struct{} {
	set := make(map[string]struct{})
	if n <= 0 {
		return set
	}
	if len(keys) < n {
		if len(keys) > 0 {
			set[encodeGram(keys)] = struct{}{}
		}
		return set
	}
	for i := 0; i+n <= len(keys); i++ {
		set[encodeGram(keys[i:i+n])] = struct{}{}
	}
	return set
}

// encodeGram packs keys into a string using variable-length base-128
// encoding, collision-free for non-negative keys.
func encodeGram(keys []int) string {
	buf := make([]byte, 0, len(keys)*2)
	for _, k := range keys {
		u := uint(k)
		for u >= 0x80 {
			buf = append(buf, byte(u)|0x80)
			u >>= 7
		}
		buf = append(buf, byte(u))
	}
	return string(buf)
}

// Jaccard returns |a∩b| / |a∪b|; two empty sets have similarity 1.
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for g := range small {
		if _, ok := large[g]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardDistance is 1 - Jaccard, the metric DBSCAN clusters on.
func JaccardDistance(a, b map[string]struct{}) float64 { return 1 - Jaccard(a, b) }
