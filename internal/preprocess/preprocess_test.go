package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/ucad/ucad/internal/session"
)

func opAt(hour int, table string) session.Operation {
	return session.Operation{
		Time: time.Date(2022, 6, 12, hour, 0, 0, 0, time.UTC),
		SQL:  "SELECT * FROM " + table + " WHERE x = 1",
	}
}

func TestPolicyDenyByAddr(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "deny-unknown-addr", Effect: Deny, Addrs: []string{"6.6.6.6"}},
	}}
	good := &session.Session{User: "u", Addr: "10.0.0.1", Ops: []session.Operation{opAt(10, "t")}}
	bad := &session.Session{User: "u", Addr: "6.6.6.6", Ops: []session.Operation{opAt(10, "t")}}
	if ok, _ := p.Evaluate(good); !ok {
		t.Fatal("good session denied")
	}
	if ok, reason := p.Evaluate(bad); ok || reason != "deny-unknown-addr" {
		t.Fatalf("bad session ok=%v reason=%q", ok, reason)
	}
}

func TestPolicyAllowCoverage(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "office-hours", Effect: Allow, Users: []string{"u1"}, HourFrom: 9, HourTo: 18},
	}}
	in := &session.Session{User: "u1", Ops: []session.Operation{opAt(10, "t"), opAt(17, "t")}}
	out := &session.Session{User: "u1", Ops: []session.Operation{opAt(10, "t"), opAt(23, "t")}}
	other := &session.Session{User: "u2", Ops: []session.Operation{opAt(10, "t")}}
	if ok, _ := p.Evaluate(in); !ok {
		t.Fatal("in-hours session denied")
	}
	if ok, reason := p.Evaluate(out); ok || reason != "uncovered-operation" {
		t.Fatalf("out-of-hours session ok=%v reason=%q", ok, reason)
	}
	if ok, _ := p.Evaluate(other); ok {
		t.Fatal("unknown user should not be covered by user-scoped allow")
	}
}

func TestPolicyHourWrapsMidnight(t *testing.T) {
	r := Rule{HourFrom: 22, HourTo: 6}
	if !r.matchHour(time.Date(2022, 1, 1, 23, 0, 0, 0, time.UTC)) {
		t.Fatal("23:00 should match 22-06 window")
	}
	if !r.matchHour(time.Date(2022, 1, 1, 3, 0, 0, 0, time.UTC)) {
		t.Fatal("03:00 should match 22-06 window")
	}
	if r.matchHour(time.Date(2022, 1, 1, 12, 0, 0, 0, time.UTC)) {
		t.Fatal("12:00 should not match 22-06 window")
	}
}

func TestPolicyGapBelowCatchesBots(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "machine-speed", Effect: Deny, GapBelow: 100 * time.Millisecond},
	}}
	base := time.Date(2022, 6, 12, 10, 0, 0, 0, time.UTC)
	human := &session.Session{Ops: []session.Operation{
		{Time: base, SQL: "SELECT 1 FROM t"},
		{Time: base.Add(2 * time.Second), SQL: "SELECT 1 FROM t"},
	}}
	bot := &session.Session{Ops: []session.Operation{
		{Time: base, SQL: "SELECT 1 FROM t"},
		{Time: base.Add(time.Millisecond), SQL: "SELECT 1 FROM t"},
	}}
	if ok, _ := p.Evaluate(human); !ok {
		t.Fatal("human-paced session denied")
	}
	if ok, _ := p.Evaluate(bot); ok {
		t.Fatal("machine-paced session passed")
	}
}

func TestPolicyDenyByTable(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "no-secrets", Effect: Deny, Tables: []string{"secrets"}},
	}}
	s := &session.Session{Ops: []session.Operation{opAt(10, "public"), opAt(11, "secrets")}}
	if ok, _ := p.Evaluate(s); ok {
		t.Fatal("session touching denied table passed")
	}
}

func TestPolicyFilterPartitions(t *testing.T) {
	p := &Policy{Rules: []Rule{{Name: "d", Effect: Deny, Users: []string{"evil"}}}}
	ss := []*session.Session{
		{User: "ok", Ops: []session.Operation{opAt(10, "t")}},
		{User: "evil", Ops: []session.Operation{opAt(10, "t")}},
	}
	kept, dropped := p.Filter(ss)
	if len(kept) != 1 || len(dropped) != 1 || kept[0].User != "ok" {
		t.Fatalf("kept=%v dropped=%v", kept, dropped)
	}
}

func TestNGramSet(t *testing.T) {
	set := NGramSet([]int{1, 2, 3, 1, 2}, 2)
	// Grams: (1,2) (2,3) (3,1) (1,2) -> 3 distinct.
	if len(set) != 3 {
		t.Fatalf("got %d grams, want 3", len(set))
	}
	short := NGramSet([]int{5}, 2)
	if len(short) != 1 {
		t.Fatalf("short sequence grams = %d, want 1", len(short))
	}
	if len(NGramSet(nil, 2)) != 0 {
		t.Fatal("empty sequence should have no grams")
	}
}

func TestEncodeGramCollisionFree(t *testing.T) {
	// Keys around the base-128 boundary must stay distinct.
	if encodeGram([]int{128, 1}) == encodeGram([]int{1, 128}) {
		t.Fatal("gram encoding collision")
	}
	if encodeGram([]int{127}) == encodeGram([]int{128}) {
		t.Fatal("gram encoding collision at boundary")
	}
}

func TestJaccard(t *testing.T) {
	a := NGramSet([]int{1, 2, 3}, 2) // (1,2) (2,3)
	b := NGramSet([]int{1, 2, 4}, 2) // (1,2) (2,4)
	if got := Jaccard(a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self-similarity must be 1")
	}
	if Jaccard(map[string]struct{}{}, map[string]struct{}{}) != 1 {
		t.Fatal("two empty sets are identical")
	}
}

// Property: Jaccard is symmetric and within [0,1].
func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := NGramSet(toKeys(xs), 2)
		b := NGramSet(toKeys(ys), 2)
		s1, s2 := Jaccard(a, b), Jaccard(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func toKeys(xs []uint8) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

func TestDBSCANTwoClusters(t *testing.T) {
	// Points on a line: cluster at 0..4, cluster at 100..104, outlier 50.
	pts := []float64{0, 1, 2, 3, 4, 100, 101, 102, 103, 104, 50}
	labels := DBSCAN(len(pts), func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	}, 1.5, 3)
	if labels[10] != Noise {
		t.Fatalf("outlier label = %d, want Noise", labels[10])
	}
	if labels[0] == labels[5] {
		t.Fatal("the two groups must be distinct clusters")
	}
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("first group split: %v", labels)
		}
	}
	for i := 6; i < 10; i++ {
		if labels[i] != labels[5] {
			t.Fatalf("second group split: %v", labels)
		}
	}
}

func TestDBSCANBorderPoint(t *testing.T) {
	// 0,1,2 form a dense core; 3.2 is reachable from 2 but not core.
	pts := []float64{0, 1, 2, 3.2}
	labels := DBSCAN(len(pts), func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	}, 1.3, 3)
	if labels[3] != labels[2] || labels[3] == Noise {
		t.Fatalf("border point not absorbed: %v", labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []float64{0, 10, 20}
	labels := DBSCAN(len(pts), func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	}, 1, 2)
	for _, l := range labels {
		if l != Noise {
			t.Fatalf("labels = %v", labels)
		}
	}
}

// mkSession builds a tokenized session with the given keys.
func mkSession(keys ...int) *session.Session {
	s := &session.Session{}
	for _, k := range keys {
		s.Ops = append(s.Ops, session.Operation{Key: k})
	}
	return s
}

func repeatKeys(base []int, n int) []int {
	var out []int
	for len(out) < n {
		out = append(out, base...)
	}
	return out[:n]
}

func TestCleanRemovesRareAndShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sessions []*session.Session
	// Pattern A: 12 sessions.
	for i := 0; i < 12; i++ {
		sessions = append(sessions, mkSession(repeatKeys([]int{1, 2, 3}, 12)...))
	}
	// Pattern B: 8 sessions.
	for i := 0; i < 8; i++ {
		sessions = append(sessions, mkSession(repeatKeys([]int{7, 8}, 12)...))
	}
	// One very short pattern-A session (same grams, dropped by the
	// length rule rather than as noise).
	sessions = append(sessions, mkSession(1, 2, 3))
	// Two noisy one-off sessions (DBSCAN noise).
	sessions = append(sessions, mkSession(repeatKeys([]int{40, 41, 42, 43}, 12)...))
	sessions = append(sessions, mkSession(repeatKeys([]int{50, 51, 52, 53}, 12)...))

	cfg := DefaultCleanConfig()
	kept, rep := Clean(sessions, cfg, rng)
	if rep.NoiseDropped < 2 {
		t.Fatalf("noise dropped = %d, want >= 2", rep.NoiseDropped)
	}
	if rep.ShortDropped < 1 {
		t.Fatalf("short dropped = %d, want >= 1", rep.ShortDropped)
	}
	for _, s := range kept {
		if len(s.Ops) <= 2 {
			t.Fatal("short session survived cleaning")
		}
		k := s.Ops[0].Key
		if k != 1 && k != 7 {
			t.Fatalf("unexpected surviving pattern starting with key %d", k)
		}
	}
	if rep.Output != len(kept) {
		t.Fatal("report output mismatch")
	}
}

func TestCleanBalancesLargeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sessions []*session.Session
	for i := 0; i < 40; i++ { // dominant pattern
		sessions = append(sessions, mkSession(repeatKeys([]int{1, 2, 3}, 10)...))
	}
	for i := 0; i < 6; i++ { // small but valid pattern
		sessions = append(sessions, mkSession(repeatKeys([]int{7, 8, 9}, 10)...))
	}
	for i := 0; i < 6; i++ { // third pattern to define the median
		sessions = append(sessions, mkSession(repeatKeys([]int{11, 12}, 10)...))
	}
	kept, rep := Clean(sessions, DefaultCleanConfig(), rng)
	if rep.BalancedSampled == 0 {
		t.Fatal("expected under-sampling of the dominant cluster")
	}
	counts := map[int]int{}
	for _, s := range kept {
		counts[s.Ops[0].Key]++
	}
	if counts[1] != rep.MedianCluster {
		t.Fatalf("dominant cluster kept %d, want median %d", counts[1], rep.MedianCluster)
	}
	if counts[7] == 0 || counts[11] == 0 {
		t.Fatalf("minority patterns lost: %v", counts)
	}
}

func TestCleanEmptyInput(t *testing.T) {
	kept, rep := Clean(nil, DefaultCleanConfig(), rand.New(rand.NewSource(1)))
	if kept != nil || rep.Input != 0 {
		t.Fatalf("kept=%v rep=%+v", kept, rep)
	}
}

func TestCleanKeepNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sessions []*session.Session
	for i := 0; i < 6; i++ {
		sessions = append(sessions, mkSession(repeatKeys([]int{1, 2}, 10)...))
	}
	sessions = append(sessions, mkSession(repeatKeys([]int{30, 31, 32}, 10)...))
	cfg := DefaultCleanConfig()
	cfg.KeepNoise = true
	cfg.SmallClusterRatio = 0 // keep singleton pseudo-clusters
	kept, rep := Clean(sessions, cfg, rng)
	if rep.NoiseDropped != 0 {
		t.Fatalf("noise dropped = %d with KeepNoise", rep.NoiseDropped)
	}
	found := false
	for _, s := range kept {
		if s.Ops[0].Key == 30 {
			found = true
		}
	}
	if !found {
		t.Fatal("noise session not retained")
	}
}

func TestCleanDeterministicForFixedSeed(t *testing.T) {
	build := func() []*session.Session {
		var ss []*session.Session
		for i := 0; i < 30; i++ {
			ss = append(ss, mkSession(repeatKeys([]int{1, 2, 3}, 10)...))
		}
		for i := 0; i < 5; i++ {
			ss = append(ss, mkSession(repeatKeys([]int{7, 8}, 10)...))
		}
		return ss
	}
	a, _ := Clean(build(), DefaultCleanConfig(), rand.New(rand.NewSource(9)))
	b, _ := Clean(build(), DefaultCleanConfig(), rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatalf("non-deterministic clean: %d vs %d", len(a), len(b))
	}
}
