// Package minidb is a small in-memory SQL engine with an audit log.
//
// It stands in for the production DBMS whose data-access logs the paper
// analyses: examples and the user-study reproduction execute real SQL
// through this engine, and UCAD consumes the audit trail it emits. The
// dialect covers CREATE TABLE, INSERT (multi-row), SELECT, UPDATE and
// DELETE with conjunctive WHERE clauses — the statement shapes appearing
// in the paper's figures.
package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a cell value: string, float64 or nil.
type Value any

// CompareOp is a WHERE comparison operator.
type CompareOp string

// Supported comparison operators.
const (
	OpEq CompareOp = "="
	OpNe CompareOp = "!="
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
	OpIn CompareOp = "IN"
)

// Condition is one conjunct of a WHERE clause: column OP literal(s).
type Condition struct {
	Column string
	Op     CompareOp
	Args   []Value // one element except for IN
}

// Statement is a parsed SQL statement.
type Statement struct {
	Kind    string // CREATE, INSERT, SELECT, UPDATE, DELETE
	Table   string
	Columns []string  // CREATE columns / INSERT columns / SELECT projection ("*" = all)
	Rows    [][]Value // INSERT values
	Sets    []struct {
		Column string
		Value  Value
	} // UPDATE assignments
	Where []Condition
}

type parser struct {
	toks []string
	pos  int
}

// Parse parses one SQL statement of the supported dialect.
func Parse(sql string) (*Statement, error) {
	p := &parser{toks: tokenize(sql)}
	if len(p.toks) == 0 {
		return nil, fmt.Errorf("minidb: empty statement")
	}
	var st *Statement
	var err error
	switch strings.ToUpper(p.toks[0]) {
	case "CREATE":
		st, err = p.parseCreate()
	case "INSERT":
		st, err = p.parseInsert()
	case "SELECT":
		st, err = p.parseSelect()
	case "UPDATE":
		st, err = p.parseUpdate()
	case "DELETE":
		st, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("minidb: unsupported statement %q", p.toks[0])
	}
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) && p.toks[p.pos] != ";" {
		return nil, fmt.Errorf("minidb: trailing input at %q", p.toks[p.pos])
	}
	return st, nil
}

// tokenize splits SQL into tokens, keeping quoted strings intact.
func tokenize(sql string) []string {
	var toks []string
	i, n := 0, len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && sql[j] != quote {
				j++
			}
			if j < n {
				j++
			}
			toks = append(toks, sql[i:j])
			i = j
		case strings.ContainsRune("(),;=*", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '<' || c == '>' || c == '!':
			if i+1 < n && sql[i+1] == '=' {
				toks = append(toks, sql[i:i+2])
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		default:
			j := i
			for j < n && !strings.ContainsRune(" \t\n\r(),;=<>!*'\"", rune(sql[j])) {
				j++
			}
			toks = append(toks, sql[i:j])
			i = j
		}
	}
	return toks
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) expect(word string) error {
	if !strings.EqualFold(p.peek(), word) {
		return fmt.Errorf("minidb: expected %q, got %q", word, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t == "" || strings.ContainsAny(t, "(),;=") {
		return "", fmt.Errorf("minidb: expected identifier, got %q", t)
	}
	return t, nil
}

// literal parses a quoted string or number into a Value.
func (p *parser) literal() (Value, error) {
	t := p.next()
	if t == "" {
		return nil, fmt.Errorf("minidb: expected literal, got end of input")
	}
	if t[0] == '\'' || t[0] == '"' {
		return strings.Trim(t, string(t[0])), nil
	}
	if strings.EqualFold(t, "NULL") {
		return nil, nil
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return nil, fmt.Errorf("minidb: invalid literal %q", t)
	}
	return f, nil
}

func (p *parser) parseCreate() (*Statement, error) {
	p.pos++ // CREATE
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &Statement{Kind: "CREATE", Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		// Skip an optional type annotation and modifiers up to , or ).
		for p.peek() != "," && p.peek() != ")" && p.peek() != "" {
			p.pos++
		}
		if p.peek() == "," {
			p.pos++
			continue
		}
		break
	}
	return st, p.expect(")")
}

func (p *parser) parseInsert() (*Statement, error) {
	p.pos++ // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: "INSERT", Table: table}
	if p.peek() == "(" {
		p.pos++
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.peek() == "," {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek() == "," {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.peek() == "," {
			p.pos++
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseSelect() (*Statement, error) {
	p.pos++ // SELECT
	st := &Statement{Kind: "SELECT"}
	for {
		if p.peek() == "*" {
			p.pos++
			st.Columns = append(st.Columns, "*")
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if p.peek() == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	return st, p.parseWhere(st)
}

func (p *parser) parseUpdate() (*Statement, error) {
	p.pos++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: "UPDATE", Table: table}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, struct {
			Column string
			Value  Value
		}{col, v})
		if p.peek() == "," {
			p.pos++
			continue
		}
		break
	}
	return st, p.parseWhere(st)
}

func (p *parser) parseDelete() (*Statement, error) {
	p.pos++ // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: "DELETE", Table: table}
	return st, p.parseWhere(st)
}

// parseWhere parses an optional "WHERE cond AND cond…" suffix.
func (p *parser) parseWhere(st *Statement) error {
	if !strings.EqualFold(p.peek(), "WHERE") {
		return nil
	}
	p.pos++
	for {
		col, err := p.ident()
		if err != nil {
			return err
		}
		opTok := strings.ToUpper(p.next())
		var cond Condition
		cond.Column = col
		switch opTok {
		case "=", "!=", "<", "<=", ">", ">=":
			if opTok == "<" && p.peek() == ">" { // "<>" split by tokenizer
				p.pos++
				opTok = "!="
			}
			cond.Op = CompareOp(opTok)
			v, err := p.literal()
			if err != nil {
				return err
			}
			cond.Args = []Value{v}
		case "IN":
			cond.Op = OpIn
			if err := p.expect("("); err != nil {
				return err
			}
			for {
				v, err := p.literal()
				if err != nil {
					return err
				}
				cond.Args = append(cond.Args, v)
				if p.peek() == "," {
					p.pos++
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("minidb: unsupported operator %q", opTok)
		}
		st.Where = append(st.Where, cond)
		if strings.EqualFold(p.peek(), "AND") {
			p.pos++
			continue
		}
		break
	}
	return nil
}
