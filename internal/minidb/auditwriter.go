package minidb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// AuditWriter appends executed operations to a JSON-lines audit file —
// the on-disk log a streaming tailer (internal/feed) follows. Records
// are the session.Operation wire format, one per line, append-only;
// durability reuses the WAL sync policies: SyncAlways fsyncs every
// record before Append returns, SyncInterval flushes on a background
// timer, SyncNever leaves it to the page cache.
//
// The writer is safe for concurrent use and is attached to a DB with
// SetAuditSink; the in-memory audit API (AuditLog/ResetAudit) is
// unaffected.
type AuditWriter struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	dirty  bool
	closed bool

	policy wal.SyncPolicy
	stop   chan struct{}
	done   chan struct{}
}

// NewAuditWriter opens (creating or appending to) the JSONL audit file
// at path. interval is the flush period under SyncInterval (0 means
// 100ms).
func NewAuditWriter(path string, policy wal.SyncPolicy, interval time.Duration) (*AuditWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("minidb: open audit file: %w", err)
	}
	a := &AuditWriter{f: f, w: bufio.NewWriter(f), policy: policy}
	if policy == wal.SyncInterval {
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		a.stop = make(chan struct{})
		a.done = make(chan struct{})
		go a.syncLoop(interval)
	}
	return a, nil
}

// Append writes one operation as a JSON line. Under SyncAlways the
// record is on stable storage when Append returns.
func (a *AuditWriter) Append(op session.Operation) error {
	b, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("minidb: encode audit record: %w", err)
	}
	b = append(b, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fmt.Errorf("minidb: audit writer closed")
	}
	if _, err := a.w.Write(b); err != nil {
		return fmt.Errorf("minidb: append audit record: %w", err)
	}
	a.dirty = true
	if a.policy == wal.SyncAlways {
		return a.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (a *AuditWriter) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	return a.syncLocked()
}

func (a *AuditWriter) syncLocked() error {
	if !a.dirty {
		return nil
	}
	if err := a.w.Flush(); err != nil {
		return fmt.Errorf("minidb: flush audit file: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("minidb: fsync audit file: %w", err)
	}
	a.dirty = false
	return nil
}

func (a *AuditWriter) syncLoop(every time.Duration) {
	defer close(a.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.Sync()
		case <-a.stop:
			return
		}
	}
}

// Close flushes, fsyncs and closes the file. Further Appends fail.
func (a *AuditWriter) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	err := a.syncLocked()
	a.closed = true
	a.mu.Unlock()
	if a.stop != nil {
		close(a.stop)
		<-a.done
	}
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the audit file path.
func (a *AuditWriter) Path() string { return a.f.Name() }
