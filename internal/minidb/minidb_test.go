package minidb

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustExec(t *testing.T, c *Conn, sql string) *Result {
	t.Helper()
	res, err := c.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func testDB(t *testing.T) (*DB, *Conn) {
	t.Helper()
	db := NewDB()
	base := time.Date(2022, 6, 12, 0, 0, 0, 0, time.UTC)
	i := 0
	db.Now = func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) }
	c := db.Connect("user1", "10.0.0.1", "s1")
	mustExec(t, c, "CREATE TABLE t_rm_mac (mac TEXT, count INT, label TEXT)")
	mustExec(t, c, "INSERT INTO t_rm_mac (mac, count, label) VALUES ('aa', 1, 'x'), ('bb', 2, 'y'), ('cc', 3, 'x')")
	return db, c
}

func TestSelectAll(t *testing.T) {
	_, c := testDB(t)
	res := mustExec(t, c, "SELECT * FROM t_rm_mac")
	if len(res.Rows) != 3 || len(res.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestSelectProjectionAndWhere(t *testing.T) {
	_, c := testDB(t)
	res := mustExec(t, c, "SELECT mac FROM t_rm_mac WHERE count >= 2 AND label = 'x'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "cc" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectIn(t *testing.T) {
	_, c := testDB(t)
	res := mustExec(t, c, "SELECT mac FROM t_rm_mac WHERE mac IN ('aa', 'cc')")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdate(t *testing.T) {
	_, c := testDB(t)
	res := mustExec(t, c, "UPDATE t_rm_mac SET count = 99, label = 'z' WHERE mac = 'bb'")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := mustExec(t, c, "SELECT count, label FROM t_rm_mac WHERE mac = 'bb'")
	if check.Rows[0][0] != float64(99) || check.Rows[0][1] != "z" {
		t.Fatalf("row = %v", check.Rows[0])
	}
}

func TestDelete(t *testing.T) {
	_, c := testDB(t)
	res := mustExec(t, c, "DELETE FROM t_rm_mac WHERE count < 3")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	left := mustExec(t, c, "SELECT * FROM t_rm_mac")
	if len(left.Rows) != 1 || left.Rows[0][0] != "cc" {
		t.Fatalf("rows = %v", left.Rows)
	}
}

func TestInsertWithoutColumnList(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a INT, b TEXT)")
	mustExec(t, c, "INSERT INTO p VALUES (1, 'one')")
	res := mustExec(t, c, "SELECT b FROM p WHERE a = 1")
	if len(res.Rows) != 1 || res.Rows[0][0] != "one" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertColumnReorder(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a INT, b TEXT)")
	mustExec(t, c, "INSERT INTO p (b, a) VALUES ('one', 1)")
	res := mustExec(t, c, "SELECT a FROM p WHERE b = 'one'")
	if res.Rows[0][0] != float64(1) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a INT)")
	for _, sql := range []string{
		"",                                   // empty
		"GRANT ALL",                          // unsupported
		"SELECT * FROM missing",              // unknown table
		"SELECT nope FROM p",                 // unknown column
		"INSERT INTO p (a) VALUES (1, 2)",    // arity
		"CREATE TABLE p (a INT)",             // duplicate table
		"INSERT INTO p (a) VALUES (oops)",    // bad literal
		"SELECT * FROM p WHERE a LIKE 'x'",   // unsupported operator
		"DELETE FROM p WHERE",                // dangling where
		"SELECT * FROM p extra tokens here!", // trailing input
	} {
		if _, err := c.Exec(sql); err == nil {
			t.Errorf("Exec(%q): expected error", sql)
		}
	}
}

func TestFailedStatementsNotAudited(t *testing.T) {
	db, c := testDB(t)
	before := len(db.AuditLog())
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("expected error")
	}
	if got := len(db.AuditLog()); got != before {
		t.Fatalf("audit grew to %d on failed statement", got)
	}
}

func TestAuditLogRecordsContext(t *testing.T) {
	db, _ := testDB(t)
	log := db.AuditLog()
	if len(log) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(log))
	}
	op := log[1]
	if op.User != "user1" || op.Addr != "10.0.0.1" || op.SessionID != "s1" {
		t.Fatalf("op context = %+v", op)
	}
	if !strings.HasPrefix(op.SQL, "INSERT") {
		t.Fatalf("op sql = %q", op.SQL)
	}
	if !log[0].Time.Before(log[1].Time) {
		t.Fatal("audit timestamps must advance")
	}
	db.ResetAudit()
	if len(db.AuditLog()) != 0 {
		t.Fatal("ResetAudit failed")
	}
}

func TestNullHandling(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a INT, b INT)")
	mustExec(t, c, "INSERT INTO p (a, b) VALUES (1, NULL)")
	// NULL is incomparable: no WHERE on b matches.
	res := mustExec(t, c, "SELECT a FROM p WHERE b = 0")
	if len(res.Rows) != 0 {
		t.Fatalf("NULL matched a comparison: %v", res.Rows)
	}
	res = mustExec(t, c, "SELECT a FROM p WHERE b != 0")
	if len(res.Rows) != 1 {
		t.Fatalf("NULL != literal should match: %v", res.Rows)
	}
}

func TestMixedTypeComparisonNeverMatches(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a TEXT)")
	mustExec(t, c, "INSERT INTO p (a) VALUES ('5')")
	res := mustExec(t, c, "SELECT a FROM p WHERE a = 5")
	if len(res.Rows) != 0 {
		t.Fatal("string '5' must not equal number 5")
	}
}

func TestNotEqualsVariants(t *testing.T) {
	db := NewDB()
	c := db.Connect("u", "a", "s")
	mustExec(t, c, "CREATE TABLE p (a INT)")
	mustExec(t, c, "INSERT INTO p (a) VALUES (1), (2)")
	for _, sql := range []string{
		"SELECT a FROM p WHERE a != 1",
		"SELECT a FROM p WHERE a <> 1",
	} {
		res := mustExec(t, c, sql)
		if len(res.Rows) != 1 || res.Rows[0][0] != float64(2) {
			t.Fatalf("%q rows = %v", sql, res.Rows)
		}
	}
}

func TestConcurrentConnections(t *testing.T) {
	db := NewDB()
	setup := db.Connect("admin", "local", "setup")
	mustExec(t, setup, "CREATE TABLE p (a INT)")
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			c := db.Connect("u", "a", "s")
			ok := true
			for i := 0; i < 50; i++ {
				if _, err := c.Exec("INSERT INTO p (a) VALUES (1)"); err != nil {
					ok = false
				}
				if _, err := c.Exec("SELECT * FROM p WHERE a = 1"); err != nil {
					ok = false
				}
			}
			done <- ok
		}(g)
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent exec failed")
		}
	}
	res := mustExec(t, setup, "SELECT * FROM p")
	if len(res.Rows) != 400 {
		t.Fatalf("rows = %d, want 400", len(res.Rows))
	}
}

// Property: the parser never panics on arbitrary input.
func TestParseTotal(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// And on statement-shaped fuzz.
	prefixes := []string{"SELECT ", "INSERT INTO ", "UPDATE ", "DELETE FROM ", "CREATE TABLE "}
	g := func(s string, p uint8) bool {
		_, _ = Parse(prefixes[int(p)%len(prefixes)] + s)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTableNames(t *testing.T) {
	db, _ := testDB(t)
	names := db.TableNames()
	if len(names) != 1 || names[0] != "t_rm_mac" {
		t.Fatalf("tables = %v", names)
	}
}
