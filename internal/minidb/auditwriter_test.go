package minidb

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

func TestAuditWriterRoundTripsThroughReadLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	aw, err := NewAuditWriter(path, wal.SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}

	db := NewDB()
	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	i := 0
	db.Now = func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) }
	db.SetAuditSink(aw)

	c := db.Connect("app", "10.0.0.1", "conn-1")
	stmts := []string{
		"CREATE TABLE t (id, name)",
		"INSERT INTO t (id, name) VALUES (1, 'a')",
		"SELECT * FROM t WHERE id = 1",
	}
	for _, s := range stmts {
		if _, err := c.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	// A failed statement must reach neither audit trail.
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("expected error for missing table")
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ops, err := session.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	mem := db.AuditLog()
	if len(ops) != len(stmts) || len(mem) != len(stmts) {
		t.Fatalf("durable %d / memory %d records, want %d", len(ops), len(mem), len(stmts))
	}
	for j := range ops {
		ops[j].Key, mem[j].Key = 0, 0
		if !reflect.DeepEqual(ops[j], mem[j]) {
			t.Fatalf("record %d diverged: durable %+v, memory %+v", j, ops[j], mem[j])
		}
	}
	if ops[0].SQL != stmts[0] || ops[0].SessionID != "conn-1" || ops[0].User != "app" {
		t.Fatalf("bad first record: %+v", ops[0])
	}
}

func TestAuditWriterSyncIntervalFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	aw, err := NewAuditWriter(path, wal.SyncInterval, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer aw.Close()
	if err := aw.Append(session.Operation{User: "u", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "SELECT 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval sync never flushed the record")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAuditWriterAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	aw, err := NewAuditWriter(path, wal.SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Append(session.Operation{SQL: "x"}); err == nil {
		t.Fatal("append after close must fail")
	}
}
