package minidb

import (
	"fmt"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// Table is an in-memory relation.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]Value
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("minidb: table %s has no column %q", t.Name, name)
}

// Result is the outcome of executing one statement.
type Result struct {
	// Columns and Rows are set for SELECT.
	Columns []string
	Rows    [][]Value
	// Affected is the number of rows inserted/updated/deleted.
	Affected int
}

// AuditSink receives every executed operation as it is recorded — the
// durable half of the audit trail (see AuditWriter). Append is called
// under the database lock, so implementations must not call back into
// the DB.
type AuditSink interface {
	Append(session.Operation) error
}

// DB is an in-memory database emitting an audit log of every executed
// statement. It is safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
	audit  []session.Operation
	sink   AuditSink
	// Now supplies timestamps for the audit log; defaults to time.Now.
	// Tests and workload generators inject deterministic clocks.
	Now func() time.Time
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table), Now: time.Now}
}

// Conn is one client connection; its identity attributes are stamped on
// every audit record it produces.
type Conn struct {
	db        *DB
	user      string
	addr      string
	sessionID string
}

// Connect opens a connection for an authenticated user. sessionID
// groups the connection's statements in the audit log.
func (db *DB) Connect(user, addr, sessionID string) *Conn {
	return &Conn{db: db, user: user, addr: addr, sessionID: sessionID}
}

// Exec parses and executes one SQL statement, recording it in the audit
// log (successful statements only — the paper's log contains executed
// operations).
func (c *Conn) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	res, err := c.db.exec(st)
	if err != nil {
		return nil, err
	}
	op := session.Operation{
		Time:      c.db.Now(),
		User:      c.user,
		Addr:      c.addr,
		SessionID: c.sessionID,
		SQL:       sql,
	}
	c.db.audit = append(c.db.audit, op)
	if c.db.sink != nil {
		// The statement executed either way; a sink failure surfaces as
		// an error alongside the result so callers know the durable
		// trail is incomplete.
		if serr := c.db.sink.Append(op); serr != nil {
			return res, serr
		}
	}
	return res, nil
}

// AuditLog returns a copy of all recorded operations in execution order.
func (db *DB) AuditLog() []session.Operation {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]session.Operation(nil), db.audit...)
}

// SetAuditSink attaches (or, with nil, detaches) a durable audit sink;
// every subsequently executed statement is appended to it in execution
// order, in addition to the in-memory log.
func (db *DB) SetAuditSink(s AuditSink) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sink = s
}

// ResetAudit clears the audit log (e.g. after a training snapshot).
func (db *DB) ResetAudit() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.audit = nil
}

// TableNames lists the tables in the database.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

func (db *DB) exec(st *Statement) (*Result, error) {
	switch st.Kind {
	case "CREATE":
		if _, exists := db.tables[st.Table]; exists {
			return nil, fmt.Errorf("minidb: table %s already exists", st.Table)
		}
		db.tables[st.Table] = &Table{Name: st.Table, Columns: st.Columns}
		return &Result{}, nil
	case "INSERT":
		return db.execInsert(st)
	case "SELECT":
		return db.execSelect(st)
	case "UPDATE":
		return db.execUpdate(st)
	case "DELETE":
		return db.execDelete(st)
	default:
		return nil, fmt.Errorf("minidb: unknown statement kind %q", st.Kind)
	}
}

func (db *DB) table(name string) (*Table, error) {
	t := db.tables[name]
	if t == nil {
		return nil, fmt.Errorf("minidb: no such table %q", name)
	}
	return t, nil
}

func (db *DB) execInsert(st *Statement) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	cols := st.Columns
	if len(cols) == 0 {
		cols = t.Columns
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		if idx[i], err = t.colIndex(c); err != nil {
			return nil, err
		}
	}
	for _, vals := range st.Rows {
		if len(vals) != len(cols) {
			return nil, fmt.Errorf("minidb: %d values for %d columns", len(vals), len(cols))
		}
		row := make([]Value, len(t.Columns))
		for i, v := range vals {
			row[idx[i]] = v
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Affected: len(st.Rows)}, nil
}

func (db *DB) execSelect(st *Statement) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	match, err := compileWhere(t, st.Where)
	if err != nil {
		return nil, err
	}
	proj := st.Columns
	if len(proj) == 1 && proj[0] == "*" {
		proj = t.Columns
	}
	idx := make([]int, len(proj))
	for i, c := range proj {
		if idx[i], err = t.colIndex(c); err != nil {
			return nil, err
		}
	}
	res := &Result{Columns: proj}
	for _, row := range t.Rows {
		if !match(row) {
			continue
		}
		out := make([]Value, len(idx))
		for i, j := range idx {
			out[i] = row[j]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (db *DB) execUpdate(st *Statement) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	match, err := compileWhere(t, st.Where)
	if err != nil {
		return nil, err
	}
	type setIdx struct {
		col int
		v   Value
	}
	sets := make([]setIdx, len(st.Sets))
	for i, s := range st.Sets {
		j, err := t.colIndex(s.Column)
		if err != nil {
			return nil, err
		}
		sets[i] = setIdx{j, s.Value}
	}
	n := 0
	for _, row := range t.Rows {
		if !match(row) {
			continue
		}
		for _, s := range sets {
			row[s.col] = s.v
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execDelete(st *Statement) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	match, err := compileWhere(t, st.Where)
	if err != nil {
		return nil, err
	}
	kept := t.Rows[:0]
	n := 0
	for _, row := range t.Rows {
		if match(row) {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.Rows = kept
	return &Result{Affected: n}, nil
}

// compileWhere builds a predicate over table rows from the conjunctive
// conditions.
func compileWhere(t *Table, conds []Condition) (func([]Value) bool, error) {
	type compiled struct {
		col  int
		cond Condition
	}
	cs := make([]compiled, len(conds))
	for i, c := range conds {
		j, err := t.colIndex(c.Column)
		if err != nil {
			return nil, err
		}
		cs[i] = compiled{j, c}
	}
	return func(row []Value) bool {
		for _, c := range cs {
			if !evalCond(row[c.col], c.cond) {
				return false
			}
		}
		return true
	}, nil
}

func evalCond(v Value, c Condition) bool {
	switch c.Op {
	case OpIn:
		for _, a := range c.Args {
			if valueEq(v, a) {
				return true
			}
		}
		return false
	case OpEq:
		return valueEq(v, c.Args[0])
	case OpNe:
		return !valueEq(v, c.Args[0])
	default:
		cmp, ok := valueCmp(v, c.Args[0])
		if !ok {
			return false
		}
		switch c.Op {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
		return false
	}
}

func valueEq(a, b Value) bool {
	cmp, ok := valueCmp(a, b)
	return ok && cmp == 0
}

// valueCmp orders two values of the same kind; mixed kinds and NULLs are
// incomparable.
func valueCmp(a, b Value) (int, bool) {
	switch av := a.(type) {
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return 0, false
		}
		switch {
		case av < bv:
			return -1, true
		case av > bv:
			return 1, true
		}
		return 0, true
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, false
		}
		switch {
		case av < bv:
			return -1, true
		case av > bv:
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}
