// Package workload synthesizes database access traces for the two
// scenarios of the paper's evaluation (§6.1) plus the public-log
// transfer datasets (§6.6).
//
// The paper's traces are proprietary; per DESIGN.md the generators
// reproduce their published statistics (Table 1) and, more importantly,
// their structure: users belong to roles, roles execute task grammars
// over statement templates, and sessions are heterogeneous interleavings
// of tasks. Anomalies are synthesized with the exact recipes of §6.1
// (privilege abuse, credential stealing, misoperations), and the extra
// normal test sets V2/V3 with the partial-swap and partial-remove
// mutations.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
)

// StmtGen renders one SQL statement with fresh literals.
type StmtGen func(rng *rand.Rand) string

// TaskGen renders one logical task: a short sequence of statements with
// a common goal (e.g. "update a table": insert → select → delete).
type TaskGen func(rng *rand.Rand) []string

// RoleSpec is one user role: a set of accounts sharing a task grammar.
type RoleSpec struct {
	Name string
	// Weight is the role's share of generated sessions (uniform when
	// all weights are zero).
	Weight float64
	Users  []string
	Addrs  []string
	// Tasks and Weights define the role's task distribution.
	Tasks   []TaskGen
	Weights []float64
	// TasksPerSession, when positive, restricts each session to a
	// random subset of that many tasks — sessions have goals, so a
	// single session exercises a focused slice of the role's grammar.
	// This is what makes §6.1's negative sampling meaningful: keys that
	// never appear in a session are negatives even when the same role
	// uses them elsewhere.
	TasksPerSession int
	// SessionTasks, when set, replaces Tasks for each new session with
	// tasks specialized to that session (e.g. a batch loader works on
	// one table with one batch size for the whole session, so its
	// statement templates repeat — the behavior visible in the paper's
	// Figure 6 session). Weights and TasksPerSession are ignored for
	// roles using SessionTasks.
	SessionTasks func(rng *rand.Rand) []TaskGen
	// RareTasks are executed with RareProb per task slot — the "rarely
	// performed" normal operations that §6.1's misoperation anomalies
	// recombine.
	RareTasks []TaskGen
	RareProb  float64
}

// Spec describes a full scenario.
type Spec struct {
	Name string
	// AvgLen is the target mean session length (Table 1).
	AvgLen int
	// LenJitter is the relative standard deviation of session lengths.
	LenJitter float64
	Roles     []RoleSpec
	// RichSelects feed A1 (privilege abuse) injections.
	RichSelects []StmtGen
	// SensitiveOps feed A2 (credential stealing) injections: deletes and
	// other statements whose templates exist in the vocabulary but are
	// foreign to most sessions' intent.
	SensitiveOps []StmtGen
	// RareOps are the rarely performed normal statements recombined by
	// A3 (misoperations).
	RareOps []StmtGen
	// InterleaveProb is the chance that two concurrent tasks' operations
	// riffle together instead of executing back-to-back — the
	// heterogeneous access patterns of §1: different operation orders
	// with identical semantics. Order-free detectors tolerate this;
	// order-dependent sequence models (LSTM/DeepLog) do not.
	InterleaveProb float64
	// ShuffleProb is the chance that one pair of adjacent
	// order-interchangeable operations (same command, different tables —
	// the paper's Figure-of-merit for interchangeability) within a task
	// executes in the opposite order. Real users do not sequence their
	// independent queries deterministically.
	ShuffleProb float64
}

// Generator synthesizes sessions from a Spec.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	base time.Time
	seq  int
	// a4pick is the A4 exfiltration campaign's fixed target template
	// (chosen lazily on the first ExfiltrateSlow call).
	a4pick StmtGen
}

// NewGenerator returns a deterministic generator for the spec.
func NewGenerator(spec Spec, seed int64) *Generator {
	return &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		base: time.Date(2022, 6, 12, 0, 0, 0, 0, time.UTC),
	}
}

// Spec returns the generator's scenario specification.
func (g *Generator) Spec() Spec { return g.spec }

// pickWeighted selects an index from weights (uniform when empty).
func pickWeighted(rng *rand.Rand, n int, weights []float64) int {
	if len(weights) != n {
		return rng.Intn(n)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

// sessionLength samples a session length around AvgLen.
func (g *Generator) sessionLength() int {
	l := float64(g.spec.AvgLen) * (1 + g.rng.NormFloat64()*g.spec.LenJitter)
	n := int(math.Round(l))
	if n < 4 {
		n = 4
	}
	return n
}

// NewSession synthesizes one normal session for a role drawn by weight.
func (g *Generator) NewSession() *session.Session {
	weights := make([]float64, len(g.spec.Roles))
	any := false
	for i := range g.spec.Roles {
		weights[i] = g.spec.Roles[i].Weight
		any = any || weights[i] > 0
	}
	if !any {
		weights = nil
	}
	role := &g.spec.Roles[pickWeighted(g.rng, len(g.spec.Roles), weights)]
	return g.newSessionForRole(role)
}

func (g *Generator) newSessionForRole(role *RoleSpec) *session.Session {
	g.seq++
	user := role.Users[g.rng.Intn(len(role.Users))]
	addr := role.Addrs[g.rng.Intn(len(role.Addrs))]
	s := &session.Session{
		ID:   fmt.Sprintf("%s-%06d", g.spec.Name, g.seq),
		User: user,
		Addr: addr,
	}
	target := g.sessionLength()
	t := g.base.Add(time.Duration(g.rng.Intn(7*24*3600)) * time.Second)
	appendStmt := func(sql string) {
		t = t.Add(time.Duration(500+g.rng.Intn(4500)) * time.Millisecond)
		s.Ops = append(s.Ops, session.Operation{
			Time: t, User: user, Addr: addr, SessionID: s.ID, SQL: sql,
		})
	}
	tasks, weights := role.Tasks, role.Weights
	if role.SessionTasks != nil {
		tasks = role.SessionTasks(g.rng)
		weights = nil
	} else if role.TasksPerSession > 0 && role.TasksPerSession < len(tasks) {
		idx := pickWeightedSubset(g.rng, len(tasks), weights, role.TasksPerSession)
		tasks = make([]TaskGen, len(idx))
		weights = make([]float64, len(idx))
		for i, j := range idx {
			tasks[i] = role.Tasks[j]
			if len(role.Weights) == len(role.Tasks) {
				weights[i] = role.Weights[j]
			} else {
				weights[i] = 1
			}
		}
	}
	nextChunk := func() []string {
		if len(role.RareTasks) > 0 && g.rng.Float64() < role.RareProb {
			return role.RareTasks[g.rng.Intn(len(role.RareTasks))](g.rng)
		}
		return tasks[pickWeighted(g.rng, len(tasks), weights)](g.rng)
	}
	for len(s.Ops) < target {
		chunk := nextChunk()
		if g.rng.Float64() < g.spec.InterleaveProb {
			chunk = riffle(g.rng, chunk, nextChunk())
		}
		if g.rng.Float64() < g.spec.ShuffleProb {
			swapInterchangeable(g.rng, chunk)
		}
		for _, sql := range chunk {
			appendStmt(sql)
		}
	}
	return s
}

// swapInterchangeable swaps one random adjacent pair of statements with
// the same command on different tables, if any exists.
func swapInterchangeable(rng *rand.Rand, chunk []string) {
	var candidates []int
	for i := 0; i+1 < len(chunk); i++ {
		a, b := sqlnorm.Abstract(chunk[i]), sqlnorm.Abstract(chunk[i+1])
		if sqlnorm.CommandOf(a) == sqlnorm.CommandOf(b) && sqlnorm.TableOf(a) != sqlnorm.TableOf(b) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return
	}
	i := candidates[rng.Intn(len(candidates))]
	chunk[i], chunk[i+1] = chunk[i+1], chunk[i]
}

// riffle merges two statement sequences preserving each one's internal
// order — the trace of two tasks running concurrently.
func riffle(rng *rand.Rand, a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	for len(a) > 0 || len(b) > 0 {
		if len(a) == 0 {
			return append(out, b...)
		}
		if len(b) == 0 {
			return append(out, a...)
		}
		// Draw proportionally so the merge is a uniform interleaving.
		if rng.Intn(len(a)+len(b)) < len(a) {
			out = append(out, a[0])
			a = a[1:]
		} else {
			out = append(out, b[0])
			b = b[1:]
		}
	}
	return out
}

// pickWeightedSubset draws k distinct task indices, each chosen by
// weight without replacement.
func pickWeightedSubset(rng *rand.Rand, n int, weights []float64, k int) []int {
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	w := make([]float64, n)
	for i := range w {
		if len(weights) == n {
			w[i] = weights[i]
		} else {
			w[i] = 1
		}
	}
	var out []int
	for len(out) < k && len(remaining) > 0 {
		j := pickWeighted(rng, len(remaining), w)
		out = append(out, remaining[j])
		remaining = append(remaining[:j], remaining[j+1:]...)
		w = append(w[:j], w[j+1:]...)
	}
	return out
}

// GenerateSessions synthesizes n normal sessions.
func (g *Generator) GenerateSessions(n int) []*session.Session {
	out := make([]*session.Session, n)
	for i := range out {
		out[i] = g.NewSession()
	}
	return out
}

// restamp rewrites timestamps so a mutated session stays temporally
// plausible (monotone with human-scale gaps).
func (g *Generator) restamp(s *session.Session) {
	if len(s.Ops) == 0 {
		return
	}
	t := s.Ops[0].Time
	for i := range s.Ops {
		s.Ops[i].Time = t
		s.Ops[i].User = s.User
		s.Ops[i].Addr = s.Addr
		s.Ops[i].SessionID = s.ID
		t = t.Add(time.Duration(500+g.rng.Intn(4500)) * time.Millisecond)
	}
}
