package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Scenario-II: the location-service application of §6.1 / Table 1 — 15
// tables, 593 statement keys (238 select, 351 insert, 146 update, 4
// delete), average session length 129, select/insert heavy.
//
// The large key count comes from fine-grained template variation, as in
// the paper's Figure 6: "gridId IN ($2, $3)" and "gridId IN ($2, …,
// $36)" are distinct templates, as are multi-row INSERT VALUES lists of
// different lengths. `richness` scales those variant ranges so scaled
// experiments keep every key trainable (1.0 reproduces Table 1's 593).

const (
	s2FpTables   = 6
	s2PicnTables = 3
)

// s2Variants derives the variant ranges from richness.
type s2Variants struct {
	selIn  int // IN-list lengths for fp selects: 2..selIn+1
	insFp  int // VALUES row counts for fp inserts: 1..insFp
	insPcn int // VALUES row counts for picn inserts: 1..insPcn
	updIn  int // IN-list lengths for fp updates: 1..updIn
}

func variantsFor(richness float64) s2Variants {
	scale := func(n int) int {
		v := int(float64(n)*richness + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	return s2Variants{selIn: scale(39), insFp: scale(48), insPcn: scale(20), updIn: scale(24)}
}

func inList(start, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d", start+i)
	}
	return strings.Join(parts, ", ")
}

func valuesList(rng *rand.Rand, rows, cols int) string {
	var b strings.Builder
	for r := 0; r < rows; r++ {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", rng.Intn(100000))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// ScenarioII returns the location-service spec with the given template
// richness in (0, 1].
func ScenarioII(richness float64) Spec {
	v := variantsFor(richness)

	selFp := func(table int, k int) StmtGen {
		return func(rng *rand.Rand) string {
			return fmt.Sprintf("SELECT * FROM t_cell_fp_%d WHERE pnci=%d and gridId IN (%s)",
				table, rng.Intn(100000), inList(rng.Intn(1000), k))
		}
	}
	selFpRand := func(rng *rand.Rand) string {
		return selFp(1+rng.Intn(s2FpTables), 2+rng.Intn(v.selIn))(rng)
	}
	// updFp renders a random update-template variant; used only as A2
	// injection material (fingerprint rewrites foreign to the victim
	// session's shape).
	updFp := func(rng *rand.Rand) string {
		table := 1 + rng.Intn(s2FpTables)
		k := 1 + rng.Intn(v.updIn)
		return fmt.Sprintf("UPDATE t_cell_fp_%d SET fps = %d WHERE pnci = %d AND gridId IN (%s)",
			table, rng.Intn(1000), rng.Intn(100000), inList(rng.Intn(1000), k))
	}

	selAuth := func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT token FROM t_auth WHERE dev = %d", rng.Intn(100000))
	}
	updAuth := func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_auth SET last_ts = %d WHERE dev = %d", rng.Intn(1e9), rng.Intn(100000))
	}
	insLocRm := func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO loc_rm (dev, lat, lon, ts) VALUES (%d, %d, %d, %d)",
			rng.Intn(100000), rng.Intn(90), rng.Intn(180), rng.Intn(1e9))
	}
	selLocRm := func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT * FROM loc_rm WHERE dev = %d", rng.Intn(100000))
	}
	insLocRmf := func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO loc_rmf (dev, lat, lon, ts) VALUES (%d, %d, %d, %d)",
			rng.Intn(100000), rng.Intn(90), rng.Intn(180), rng.Intn(1e9))
	}
	selLocRmf := func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT * FROM loc_rmf WHERE dev = %d", rng.Intn(100000))
	}
	selGrid := func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT * FROM t_grid WHERE gridId = %d", rng.Intn(100000))
	}
	selDev := func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT * FROM t_dev WHERE dev = %d", rng.Intn(100000))
	}
	updDev := func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_dev SET last_seen = %d WHERE dev = %d", rng.Intn(1e9), rng.Intn(100000))
	}
	updMeta := func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_fp_meta SET version = %d WHERE tbl = %d", rng.Intn(1000), rng.Intn(s2FpTables))
	}

	delLocRm := func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM loc_rm WHERE dev = %d", rng.Intn(100000))
	}
	delLocRmf := func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM loc_rmf WHERE ts < %d", rng.Intn(1e9))
	}
	// Fingerprint purges run against the archive partitions (fixed
	// tables) so the scenario keeps exactly 4 delete templates (Table 1).
	delFp := func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_cell_fp_1 WHERE pnci = %d", rng.Intn(100000))
	}
	delPicn := func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_cell_picn_1 WHERE pnci = %d", rng.Intn(100000))
	}

	reporters := RoleSpec{
		Name:   "reporter",
		Weight: 0.5,
		Users:  []string{"app1", "app2", "app3", "app4", "app5"},
		Addrs:  []string{"172.16.0.10", "172.16.0.11", "172.16.0.12"},
		Tasks: []TaskGen{
			steps(selAuth, updAuth, updDev),     // authenticate
			steps(insLocRm, selLocRm),           // report a location
			steps(insLocRm, insLocRm, selLocRm), // burst report
			steps(insLocRmf, selLocRmf),         // offline cache
			steps(selDev, selLocRm),             // device status
		},
		Weights:         []float64{1, 4, 2, 1.5, 1.5},
		TasksPerSession: 3,
		RareTasks: []TaskGen{
			steps(selLocRm, delLocRm),   // device reset wipes its trail
			steps(selLocRmf, delLocRmf), // offline-cache cleanup
		},
		RareProb: 0.03,
	}
	// fpProfiles is the pool of recurring fingerprint-job shapes
	// (table, select IN-lengths, insert batch size, update IN-length).
	// It is seeded lazily from the first session's rng so a generator is
	// fully deterministic in its seed.
	var fpProfiles [][5]int
	ensureFpProfiles := func(rng *rand.Rand) {
		if fpProfiles != nil {
			return
		}
		n := int(400*richness + 0.5)
		if n < 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			fpProfiles = append(fpProfiles, [5]int{
				1 + rng.Intn(s2FpTables),
				2 + rng.Intn(v.selIn),
				2 + rng.Intn(v.selIn),
				1 + rng.Intn(v.insFp),
				1 + rng.Intn(v.updIn),
			})
		}
	}
	var picnProfiles [][2]int
	ensurePicnProfiles := func(rng *rand.Rand) {
		if picnProfiles != nil {
			return
		}
		n := int(60*richness + 0.5)
		if n < 3 {
			n = 3
		}
		for i := 0; i < n; i++ {
			picnProfiles = append(picnProfiles, [2]int{1 + rng.Intn(s2PicnTables), 1 + rng.Intn(v.insPcn)})
		}
	}
	// insFp1 inserts a single row into the archive fingerprint table: a
	// fixed template for rare maintenance tasks.
	insFp1 := func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO t_cell_fp_1 (pnci, gridId, fps) VALUES %s", valuesList(rng, 1, 3))
	}
	fpMaintainers := RoleSpec{
		Name:   "fp-maintainer",
		Weight: 0.35,
		Users:  []string{"fpsvc1", "fpsvc2", "fpsvc3"},
		Addrs:  []string{"172.16.1.20", "172.16.1.21"},
		// A maintenance session works on one fingerprint table with one
		// batch shape: its statement templates repeat within the session
		// (as in Figure 6) while different sessions cover different
		// template variants. Shapes come from a finite pool of recurring
		// job profiles — batch jobs re-run with the same shape — so the
		// training split covers the shapes the test split replays.
		SessionTasks: func(rng *rand.Rand) []TaskGen {
			ensureFpProfiles(rng)
			p := fpProfiles[rng.Intn(len(fpProfiles))]
			table, kA, kB, rows, kU := p[0], p[1], p[2], p[3], p[4]
			ins := func(rng *rand.Rand) string {
				return fmt.Sprintf("INSERT INTO t_cell_fp_%d (pnci, gridId, fps) VALUES %s",
					table, valuesList(rng, rows, 3))
			}
			upd := func(rng *rand.Rand) string {
				return fmt.Sprintf("UPDATE t_cell_fp_%d SET fps = %d WHERE pnci = %d AND gridId IN (%s)",
					table, rng.Intn(1000), rng.Intn(100000), inList(rng.Intn(1000), kU))
			}
			all := []TaskGen{
				steps(ins, selFp(table, kA)),                        // load then verify
				steps(selFp(table, kA), selFp(table, kB)),           // lookups
				steps(ins, selFp(table, kA), ins, selFp(table, kB)), // bulk load
				steps(selGrid, selFp(table, kA)),                    // grid-driven lookup
				steps(selFp(table, kA), upd),                        // verify then correct
			}
			// Each session pursues two or three of these goals.
			n := 2 + rng.Intn(2)
			rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
			return all[:n]
		},
		RareTasks: []TaskGen{
			steps(updMeta, selGrid), // version bump
			steps(delFp, insFp1),    // archive reload
		},
		RareProb: 0.05,
	}
	// insPicn1 is the fixed single-row template for rare reload tasks.
	insPicn1 := func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO t_cell_picn_1 (pnci, pi, cn) VALUES %s", valuesList(rng, 1, 3))
	}
	picnLoaders := RoleSpec{
		Name:   "picn-loader",
		Weight: 0.15,
		Users:  []string{"picn1", "picn2"},
		Addrs:  []string{"172.16.2.30"},
		// Loader sessions target one picn table with one batch size,
		// drawn from the recurring profile pool.
		SessionTasks: func(rng *rand.Rand) []TaskGen {
			ensurePicnProfiles(rng)
			p := picnProfiles[rng.Intn(len(picnProfiles))]
			table, rows := p[0], p[1]
			ins := func(rng *rand.Rand) string {
				return fmt.Sprintf("INSERT INTO t_cell_picn_%d (pnci, pi, cn) VALUES %s",
					table, valuesList(rng, rows, 3))
			}
			return []TaskGen{
				steps(ins, selGrid),
				steps(ins, ins, selGrid),
				steps(selGrid, selDev),
			}
		},
		RareTasks: []TaskGen{
			steps(delPicn, insPicn1), // picn reload
		},
		RareProb: 0.04,
	}
	return Spec{
		Name:           "scenario-ii",
		AvgLen:         129,
		LenJitter:      0.2,
		InterleaveProb: 0.15,
		ShuffleProb:    0.1,
		Roles:          []RoleSpec{reporters, fpMaintainers, picnLoaders},
		RichSelects: []StmtGen{
			selFpRand, selLocRm, selLocRmf, selGrid, selDev, selAuth,
		},
		// Deletes and fingerprint rewrites are foreign to reporter and
		// loader sessions: the stealthy A2 material.
		SensitiveOps: []StmtGen{
			delLocRm, delLocRmf, delFp, delPicn, updFp,
		},
		RareOps: []StmtGen{
			updMeta, delLocRmf, delLocRm, selAuth, updAuth, insFp1,
		},
	}
}
