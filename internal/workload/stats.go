package workload

import (
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
)

// Stats summarizes a session set the way the paper's Table 1 does.
type Stats struct {
	Sessions      int
	AvgLen        float64
	Keys          int            // distinct statement templates
	KeysByCommand map[string]int // SELECT / INSERT / UPDATE / DELETE
	Tables        int
}

// ComputeStats tokenizes the sessions with a fresh vocabulary and
// reports Table 1 statistics.
func ComputeStats(sessions []*session.Session) Stats {
	v := sqlnorm.NewVocabulary()
	tables := make(map[string]bool)
	totalOps := 0
	for _, s := range sessions {
		for i := range s.Ops {
			v.Learn(s.Ops[i].SQL)
			if t := s.Ops[i].Table(); t != "" {
				tables[t] = true
			}
		}
		totalOps += len(s.Ops)
	}
	st := Stats{
		Sessions:      len(sessions),
		Keys:          v.Size() - 1,
		KeysByCommand: make(map[string]int),
		Tables:        len(tables),
	}
	if len(sessions) > 0 {
		st.AvgLen = float64(totalOps) / float64(len(sessions))
	}
	for _, tpl := range v.Templates()[1:] {
		st.KeysByCommand[sqlnorm.CommandOf(tpl)]++
	}
	return st
}
