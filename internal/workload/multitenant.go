package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file adapts the batch dataset builders to *streaming* multi-tenant
// serving: each tenant runs its own scenario (a database workload or a
// sessionized system log), and a MultiGen riffles their sessions into one
// event stream the way a shared ingest frontend would see them. The
// single-tenant generators stay untouched — sources wrap them.

// StreamSession is one session rendered for streaming ingest: the
// assembly key, the acting principal, and the ordered statement texts.
type StreamSession struct {
	ClientID   string
	User       string
	Addr       string
	Statements []string
	// Anomalous marks sessions synthesized to violate the source's
	// grammar — ground truth for end-to-end detection checks.
	Anomalous bool
}

// SessionSource produces a stream of sessions. Implementations are
// deterministic for a fixed seed and not safe for concurrent use.
type SessionSource interface {
	NextSession() StreamSession
}

// ScenarioSource streams sessions from a database scenario Spec,
// injecting the §6.1 attack syntheses at a configurable rate.
type ScenarioSource struct {
	gen         *Generator
	rng         *rand.Rand
	anomalyProb float64
}

// NewScenarioSource wraps a scenario spec as a streaming source.
// anomalyProb is the per-session chance of an A1/A2/A3 synthesis.
func NewScenarioSource(spec Spec, seed int64, anomalyProb float64) *ScenarioSource {
	return &ScenarioSource{
		gen:         NewGenerator(spec, seed),
		rng:         rand.New(rand.NewSource(seed ^ 0x5ca1ab1e)),
		anomalyProb: anomalyProb,
	}
}

// NextSession returns the next session, anomalous with probability
// anomalyProb via a uniformly chosen attack recipe.
func (s *ScenarioSource) NextSession() StreamSession {
	sess := s.gen.NewSession()
	anomalous := false
	if s.rng.Float64() < s.anomalyProb {
		anomalous = true
		switch s.rng.Intn(3) {
		case 0:
			sess = s.gen.AbusePrivilege(sess)
		case 1:
			sess = s.gen.StealCredential(sess)
		default:
			sess = s.gen.Misoperate(s.gen.spec.AvgLen)
		}
	}
	stmts := make([]string, len(sess.Ops))
	for i := range sess.Ops {
		stmts[i] = sess.Ops[i].SQL
	}
	return StreamSession{
		ClientID:   sess.ID,
		User:       sess.User,
		Addr:       sess.Addr,
		Statements: stmts,
		Anomalous:  anomalous,
	}
}

// LogSource streams sessions from one of the §6.6 system-log grammars,
// rendering template ids as SQL so a log tenant flows through the same
// normalization pipeline as a database tenant (the transfer experiment's
// premise: log keys and statement templates are the same abstraction).
type LogSource struct {
	grammar     *logGrammar
	rng         *rand.Rand
	anomalyProb float64
	seq         int
}

// NewLogSource returns a streaming source for corpus "hdfs", "bgl", or
// "thunderbird". anomalyProb is the per-session chance of a grammar
// violation (error burst, truncation, foreign interleaving).
func NewLogSource(corpus string, seed int64, anomalyProb float64) (*LogSource, error) {
	var g *logGrammar
	switch strings.ToLower(corpus) {
	case "hdfs":
		g = hdfsGrammar()
	case "bgl":
		g = bglGrammar()
	case "thunderbird":
		g = thunderbirdGrammar()
	default:
		return nil, fmt.Errorf("workload: unknown log corpus %q (want hdfs, bgl, or thunderbird)", corpus)
	}
	return &LogSource{
		grammar:     g,
		rng:         rand.New(rand.NewSource(seed)),
		anomalyProb: anomalyProb,
	}, nil
}

// SQL renders one log-template id as a statement. The template id lands
// in the table position, so sqlnorm keys each id distinctly — the
// identifier lexer keeps digits, making LOG_HDFS_EVT_7 one token.
func (s *LogSource) SQL(key int) string {
	return fmt.Sprintf("SELECT event FROM LOG_%s_EVT_%d", strings.ToUpper(s.grammar.name), key)
}

// NextSession returns the next sessionized log trace rendered as SQL.
func (s *LogSource) NextSession() StreamSession {
	s.seq++
	anomalous := s.rng.Float64() < s.anomalyProb
	var keys []int
	if anomalous {
		keys = s.grammar.abnormalSession(s.rng)
	} else {
		keys = s.grammar.normalSession(s.rng)
	}
	stmts := make([]string, len(keys))
	for i, k := range keys {
		stmts[i] = s.SQL(k)
	}
	lower := strings.ToLower(s.grammar.name)
	return StreamSession{
		ClientID:   fmt.Sprintf("%s-%06d", lower, s.seq),
		User:       lower + "-agent",
		Addr:       "10.9.0.1",
		Statements: stmts,
		Anomalous:  anomalous,
	}
}

// TenantEvent is one statement of the interleaved multi-tenant stream,
// addressed to its tenant — the shape a multi-tenant ingest endpoint
// consumes.
type TenantEvent struct {
	Tenant   string
	ClientID string
	User     string
	Addr     string
	SQL      string
	// SessionEnd marks the last statement of its session.
	SessionEnd bool
	// Anomalous carries the session's ground-truth label on every event.
	Anomalous bool
}

// TenantStream binds a session source to a tenant id within a MultiGen.
type TenantStream struct {
	Tenant string
	Source SessionSource
	// Weight is the tenant's share of emitted events; zero counts as 1
	// (uniform when no weights are set).
	Weight float64
	// Concurrency is how many of the tenant's sessions stream at once
	// (default 2) — events of concurrent sessions interleave, as they
	// would from independent connections.
	Concurrency int
}

// MultiGen riffles the sessions of several tenants into one event
// stream: each Next draws a tenant by weight, then one of that tenant's
// open sessions uniformly, and emits its next statement. Deterministic
// for a fixed seed; not safe for concurrent use.
type MultiGen struct {
	rng     *rand.Rand
	streams []*tenantState
	weights []float64
}

type tenantState struct {
	TenantStream
	open []*openSession
}

type openSession struct {
	s   StreamSession
	pos int
}

// NewMultiGen builds an interleaving generator over the tenant streams.
func NewMultiGen(seed int64, streams ...TenantStream) *MultiGen {
	if len(streams) == 0 {
		panic("workload: NewMultiGen needs at least one stream")
	}
	m := &MultiGen{rng: rand.New(rand.NewSource(seed))}
	anyWeight := false
	for _, ts := range streams {
		if ts.Concurrency <= 0 {
			ts.Concurrency = 2
		}
		m.streams = append(m.streams, &tenantState{TenantStream: ts})
		m.weights = append(m.weights, ts.Weight)
		anyWeight = anyWeight || ts.Weight > 0
	}
	if !anyWeight {
		m.weights = nil
	} else {
		for i, w := range m.weights {
			if w == 0 {
				m.weights[i] = 1
			}
		}
	}
	return m
}

// Next emits the next event of the interleaved stream.
func (m *MultiGen) Next() TenantEvent {
	st := m.streams[pickWeighted(m.rng, len(m.streams), m.weights)]
	for len(st.open) < st.Concurrency {
		s := st.Source.NextSession()
		if len(s.Statements) == 0 {
			continue // a degenerate source session carries no events
		}
		st.open = append(st.open, &openSession{s: s})
	}
	i := m.rng.Intn(len(st.open))
	o := st.open[i]
	ev := TenantEvent{
		Tenant:    st.Tenant,
		ClientID:  o.s.ClientID,
		User:      o.s.User,
		Addr:      o.s.Addr,
		SQL:       o.s.Statements[o.pos],
		Anomalous: o.s.Anomalous,
	}
	o.pos++
	if o.pos == len(o.s.Statements) {
		ev.SessionEnd = true
		st.open = append(st.open[:i], st.open[i+1:]...)
	}
	return ev
}

// Take emits the next n events.
func (m *MultiGen) Take(n int) []TenantEvent {
	out := make([]TenantEvent, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}
