package workload

import (
	"math"
	"testing"

	"github.com/ucad/ucad/internal/sqlnorm"
)

func TestScenarioIStatsMatchTable1(t *testing.T) {
	g := NewGenerator(ScenarioI(), 1)
	sessions := g.GenerateSessions(354)
	st := ComputeStats(sessions)
	if st.Keys != 20 {
		t.Fatalf("keys = %d, want 20 (Table 1)", st.Keys)
	}
	want := map[string]int{"SELECT": 7, "INSERT": 4, "UPDATE": 4, "DELETE": 5}
	for cmd, n := range want {
		if st.KeysByCommand[cmd] != n {
			t.Fatalf("%s keys = %d, want %d (got %v)", cmd, st.KeysByCommand[cmd], n, st.KeysByCommand)
		}
	}
	if st.Tables != 7 {
		t.Fatalf("tables = %d, want 7", st.Tables)
	}
	if math.Abs(st.AvgLen-24) > 5 {
		t.Fatalf("avg length = %v, want ~24", st.AvgLen)
	}
}

func TestScenarioIIStatsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-richness Scenario-II generation is slow")
	}
	// Sessions are template-sticky (one batch shape each), so covering
	// the ~700-template space needs a realistic session count; the paper
	// uses 3722.
	g := NewGenerator(ScenarioII(1.0), 2)
	sessions := g.GenerateSessions(1500)
	st := ComputeStats(sessions)
	// Table 1 reports 593 keys broken down as (238, 351, 146, 4), which
	// sums to 739; we target the per-command breakdown, which is the
	// consistent part, with stochastic-coverage tolerance.
	if st.Keys < 450 || st.Keys > 745 {
		t.Fatalf("keys = %d, want ≈700 (Table 1 breakdown sum 739)", st.Keys)
	}
	if n := st.KeysByCommand["SELECT"]; n < 150 || n > 250 {
		t.Fatalf("select keys = %d, want ≈238", n)
	}
	if n := st.KeysByCommand["INSERT"]; n < 180 || n > 360 {
		t.Fatalf("insert keys = %d, want ≈351", n)
	}
	if n := st.KeysByCommand["UPDATE"]; n < 90 || n > 160 {
		t.Fatalf("update keys = %d, want ≈146", n)
	}
	if st.Tables != 15 {
		t.Fatalf("tables = %d, want 15", st.Tables)
	}
	if math.Abs(st.AvgLen-129) > 20 {
		t.Fatalf("avg length = %v, want ~129", st.AvgLen)
	}
	// Command mix: select+insert dominate, few deletes.
	if st.KeysByCommand["DELETE"] > 8 {
		t.Fatalf("delete keys = %d, want ≤ 8", st.KeysByCommand["DELETE"])
	}
	if st.KeysByCommand["SELECT"] < 100 || st.KeysByCommand["INSERT"] < 100 {
		t.Fatalf("command mix %v lacks select/insert richness", st.KeysByCommand)
	}
}

func TestScenarioIIRichnessScalesKeys(t *testing.T) {
	small := NewGenerator(ScenarioII(0.1), 3)
	st := ComputeStats(small.GenerateSessions(60))
	if st.Keys > 120 {
		t.Fatalf("richness 0.1 produced %d keys, want well under the full 593", st.Keys)
	}
	if st.Tables < 14 {
		t.Fatalf("tables = %d, want ~15 regardless of richness", st.Tables)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(ScenarioI(), 7).GenerateSessions(5)
	b := NewGenerator(ScenarioI(), 7).GenerateSessions(5)
	for i := range a {
		if len(a[i].Ops) != len(b[i].Ops) {
			t.Fatal("same seed must reproduce sessions")
		}
		for j := range a[i].Ops {
			if a[i].Ops[j].SQL != b[i].Ops[j].SQL {
				t.Fatal("same seed must reproduce statements")
			}
		}
	}
}

func TestSessionsAreWellFormed(t *testing.T) {
	g := NewGenerator(ScenarioI(), 4)
	for _, s := range g.GenerateSessions(20) {
		if s.User == "" || s.Addr == "" || s.ID == "" {
			t.Fatalf("missing identity: %+v", s)
		}
		for i := 1; i < len(s.Ops); i++ {
			if !s.Ops[i].Time.After(s.Ops[i-1].Time) {
				t.Fatal("timestamps must be strictly increasing")
			}
			if s.Ops[i].User != s.User || s.Ops[i].SessionID != s.ID {
				t.Fatal("operation identity must match the session")
			}
		}
	}
}

func templateCounts(ops []string) map[string]int {
	m := map[string]int{}
	for _, sql := range ops {
		m[sqlnorm.Abstract(sql)]++
	}
	return m
}

func TestPartialSwapPreservesMultiset(t *testing.T) {
	g := NewGenerator(ScenarioI(), 5)
	s := g.NewSession()
	swapped := g.PartialSwap(s)
	if len(swapped.Ops) != len(s.Ops) {
		t.Fatal("swap must not change length")
	}
	var a, b []string
	for i := range s.Ops {
		a = append(a, s.Ops[i].SQL)
		b = append(b, swapped.Ops[i].SQL)
	}
	ca, cb := templateCounts(a), templateCounts(b)
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("template multiset changed for %q", k)
		}
	}
	moved := false
	for i := range a {
		if a[i] != b[i] {
			moved = true
		}
	}
	if !moved {
		t.Log("no swap happened for this session (possible but unlikely)")
	}
}

func TestPartialRemoveOnlyRemoves(t *testing.T) {
	g := NewGenerator(ScenarioI(), 6)
	s := g.NewSession()
	removed := g.PartialRemove(s)
	if len(removed.Ops) > len(s.Ops) {
		t.Fatal("remove must not add operations")
	}
	ca, cb := map[string]int{}, map[string]int{}
	for i := range s.Ops {
		ca[sqlnorm.Abstract(s.Ops[i].SQL)]++
	}
	for i := range removed.Ops {
		cb[sqlnorm.Abstract(removed.Ops[i].SQL)]++
	}
	for k, v := range cb {
		if v > ca[k] {
			t.Fatalf("remove introduced template %q", k)
		}
	}
}

func TestStealCredentialIsStealthy(t *testing.T) {
	g := NewGenerator(ScenarioI(), 7)
	for i := 0; i < 10; i++ {
		s := g.NewSession()
		ab := g.StealCredential(s)
		added := len(ab.Ops) - len(s.Ops)
		if added < 1 {
			t.Fatal("A2 must add at least one operation")
		}
		if added > len(s.Ops)/10+1 {
			t.Fatalf("A2 added %d ops to a %d-op session; must stay under ~10%%", added, len(s.Ops))
		}
	}
}

func TestAbusePrivilegeAddsOnlySelects(t *testing.T) {
	g := NewGenerator(ScenarioI(), 8)
	s := g.NewSession()
	ab := g.AbusePrivilege(s)
	if len(ab.Ops) <= len(s.Ops) {
		t.Fatal("A1 must add operations")
	}
	base := map[string]int{}
	for i := range s.Ops {
		base[sqlnorm.Abstract(s.Ops[i].SQL)]++
	}
	for i := range ab.Ops {
		tpl := sqlnorm.Abstract(ab.Ops[i].SQL)
		if base[tpl] > 0 {
			base[tpl]--
			continue
		}
		if sqlnorm.CommandOf(tpl) != "SELECT" {
			t.Fatalf("A1 injected non-select %q", tpl)
		}
	}
}

func TestMisoperateUsesRareOps(t *testing.T) {
	spec := ScenarioI()
	g := NewGenerator(spec, 9)
	rare := map[string]bool{}
	probe := NewGenerator(spec, 9)
	for _, gen := range spec.RareOps {
		for i := 0; i < 20; i++ {
			rare[sqlnorm.Abstract(gen(probe.rng))] = true
		}
	}
	s := g.Misoperate(24)
	if len(s.Ops) < 6 {
		t.Fatalf("A3 session too short: %d", len(s.Ops))
	}
	for i := range s.Ops {
		if !rare[sqlnorm.Abstract(s.Ops[i].SQL)] {
			t.Fatalf("A3 used non-rare statement %q", s.Ops[i].SQL)
		}
	}
}

func TestBuildSuiteShapes(t *testing.T) {
	g := NewGenerator(ScenarioI(), 10)
	suite := g.BuildSuite(50)
	if len(suite.Train) != 40 || len(suite.Normal["V1"]) != 10 {
		t.Fatalf("split = %d/%d, want 40/10", len(suite.Train), len(suite.Normal["V1"]))
	}
	for _, name := range []string{"V2", "V3"} {
		if len(suite.Normal[name]) != 10 {
			t.Fatalf("%s size = %d", name, len(suite.Normal[name]))
		}
	}
	for _, name := range []string{"A1", "A2", "A3"} {
		if len(suite.Abnormal[name]) != 10 {
			t.Fatalf("%s size = %d", name, len(suite.Abnormal[name]))
		}
	}
}

func TestContaminateReplacesRatio(t *testing.T) {
	g := NewGenerator(ScenarioI(), 11)
	train := g.GenerateSessions(40)
	dirty := g.Contaminate(train, 0.25)
	if len(dirty) != len(train) {
		t.Fatal("contamination must preserve set size")
	}
	changed := 0
	for i := range train {
		if dirty[i] != train[i] {
			changed++
		}
	}
	if changed != 10 {
		t.Fatalf("changed %d sessions, want 10", changed)
	}
}

func TestSyslogDatasets(t *testing.T) {
	for _, build := range []func(int, int, int, int64) *LogDataset{HDFSLike, BGLLike, ThunderbirdLike} {
		d := build(30, 10, 10, 1)
		if len(d.Train) != 30 || len(d.TestNormal) != 10 || len(d.TestAbnormal) != 10 {
			t.Fatalf("%s sizes wrong", d.Name)
		}
		anomalySet := map[int]bool{}
		for _, k := range d.AnomalyKeys {
			anomalySet[k] = true
		}
		for _, s := range append(append([][]int{}, d.Train...), d.TestNormal...) {
			if len(s) < 3 {
				t.Fatalf("%s session too short: %v", d.Name, s)
			}
			for _, k := range s {
				if k <= 0 || k >= d.Vocab {
					t.Fatalf("%s key %d outside vocab %d", d.Name, k, d.Vocab)
				}
				if anomalySet[k] {
					t.Fatalf("%s normal session uses anomaly template %d", d.Name, k)
				}
			}
		}
		// Abnormal sessions are mostly normal keys (stealthy), and at
		// least some must carry anomaly-only templates.
		sawAnomalyKey := false
		for _, s := range d.TestAbnormal {
			for _, k := range s {
				if anomalySet[k] {
					sawAnomalyKey = true
				}
			}
		}
		if !sawAnomalyKey {
			t.Fatalf("%s abnormal sessions never use anomaly templates", d.Name)
		}
	}
}

func TestSyslogDeterminism(t *testing.T) {
	a := HDFSLike(5, 5, 5, 42)
	b := HDFSLike(5, 5, 5, 42)
	for i := range a.Train {
		if len(a.Train[i]) != len(b.Train[i]) {
			t.Fatal("same seed must reproduce the dataset")
		}
		for j := range a.Train[i] {
			if a.Train[i][j] != b.Train[i][j] {
				t.Fatal("same seed must reproduce the dataset")
			}
		}
	}
}

func TestKeyedUsesDetectionSemantics(t *testing.T) {
	g := NewGenerator(ScenarioI(), 12)
	train := g.GenerateSessions(10)
	v := sqlnorm.NewVocabulary()
	for _, s := range train {
		for i := range s.Ops {
			v.Learn(s.Ops[i].SQL)
		}
	}
	keyed := Keyed(v, train)
	if len(keyed) != 10 {
		t.Fatal("wrong session count")
	}
	for i, keys := range keyed {
		if len(keys) != len(train[i].Ops) {
			t.Fatal("wrong op count")
		}
		for _, k := range keys {
			if k <= 0 {
				t.Fatal("training statements must all be in vocabulary")
			}
		}
	}
}
