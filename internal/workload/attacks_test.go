package workload

import (
	"sort"
	"strings"
	"testing"

	"github.com/ucad/ucad/internal/sqlnorm"
)

func TestExfiltrateSlowIsLowAndSlow(t *testing.T) {
	g := NewGenerator(ScenarioI(), 11)
	sessions := g.GenerateSessions(20)
	campaign := map[string]bool{}
	for _, s := range sessions {
		a := g.ExfiltrateSlow(s)
		extra := len(a.Ops) - len(s.Ops)
		if extra < 1 || extra > 2 {
			t.Fatalf("A4 injected %d ops, want 1-2 (low and slow)", extra)
		}
		// The injected statements are the ones not in the original
		// multiset; they must all share one campaign template.
		orig := map[string]int{}
		for _, op := range s.Ops {
			orig[op.SQL]++
		}
		for _, op := range a.Ops {
			if orig[op.SQL] > 0 {
				orig[op.SQL]--
				continue
			}
			campaign[sqlnorm.Abstract(op.SQL)] = true
		}
	}
	if len(campaign) != 1 {
		t.Fatalf("A4 campaign used %d distinct templates, want exactly 1: %v", len(campaign), campaign)
	}
}

func TestEscalatePrivilegeIsPureReordering(t *testing.T) {
	g := NewGenerator(ScenarioI(), 12)
	reordered := 0
	for _, s := range g.GenerateSessions(20) {
		a := g.EscalatePrivilege(s)
		if len(a.Ops) != len(s.Ops) {
			t.Fatalf("A5 changed session length %d -> %d; must only reorder", len(s.Ops), len(a.Ops))
		}
		want := make([]string, len(s.Ops))
		got := make([]string, len(a.Ops))
		same := true
		for i := range s.Ops {
			want[i] = s.Ops[i].SQL
			got[i] = a.Ops[i].SQL
			if want[i] != got[i] {
				same = false
			}
		}
		if !same {
			reordered++
		}
		sort.Strings(want)
		sort.Strings(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("A5 changed the statement multiset at %d: %q vs %q", i, want[i], got[i])
			}
		}
	}
	if reordered == 0 {
		t.Fatal("A5 never reordered anything")
	}
}

func TestMassDeleteInjectsBurst(t *testing.T) {
	g := NewGenerator(ScenarioI(), 13)
	for _, s := range g.GenerateSessions(10) {
		a := g.MassDelete(s)
		extra := len(a.Ops) - len(s.Ops)
		if extra < 6 || extra > 10 {
			t.Fatalf("A6 burst size %d, want 6-10", extra)
		}
		// Find the longest run of consecutive deletes.
		run, best := 0, 0
		for _, op := range a.Ops {
			if strings.HasPrefix(strings.ToUpper(op.SQL), "DELETE") {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
		if best < 6 {
			t.Fatalf("A6 longest delete run = %d, want >= 6", best)
		}
	}
}

func TestExtendAttacksPreservesBaseSuite(t *testing.T) {
	base := NewGenerator(ScenarioI(), 7).BuildSuite(20)
	g := NewGenerator(ScenarioI(), 7)
	suite := g.BuildSuite(20)
	g.ExtendAttacks(suite)

	for _, fam := range []string{"A4", "A5", "A6"} {
		if len(suite.Abnormal[fam]) != len(suite.Normal["V1"]) {
			t.Fatalf("%s has %d sessions, want %d (one per V1 session)",
				fam, len(suite.Abnormal[fam]), len(suite.Normal["V1"]))
		}
	}
	// The pre-existing sets are byte-identical to an unextended build.
	for fam, want := range base.Abnormal {
		got := suite.Abnormal[fam]
		if len(got) != len(want) {
			t.Fatalf("%s resized by ExtendAttacks", fam)
		}
		for i := range want {
			if len(want[i].Ops) != len(got[i].Ops) {
				t.Fatalf("%s[%d] changed by ExtendAttacks", fam, i)
			}
			for j := range want[i].Ops {
				if want[i].Ops[j].SQL != got[i].Ops[j].SQL {
					t.Fatalf("%s[%d].Ops[%d] changed by ExtendAttacks", fam, i, j)
				}
			}
		}
	}
}
