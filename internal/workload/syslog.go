package workload

import "math/rand"

// LogDataset is a sessionized system-log dataset for the transfer
// experiment (§6.6): statement keys are log-template ids.
//
// The real HDFS/BGL/Thunderbird corpora are multi-GB downloads; per
// DESIGN.md these simulators reproduce their *shape*: normal sessions
// follow per-source procedural grammars (block lifecycles, component
// event chains), anomalies violate them (missing / foreign / bursty
// events), and anomaly rates match the published corpora (~3%, ~7%,
// ~1.5% of sessions respectively).
type LogDataset struct {
	Name         string
	Vocab        int // number of template ids including the reserved 0
	Train        [][]int
	TestNormal   [][]int
	TestAbnormal [][]int
	// AnomalyKeys are the template ids that only abnormal sessions use.
	AnomalyKeys []int
}

// logGrammar drives the shared simulator.
type logGrammar struct {
	name string
	// procedures are the normal event-chain building blocks.
	procedures [][]int
	// shuffleWithin allows procedure-internal reordering (heterogeneous
	// interleaving as in HDFS replica events).
	shuffleWithin bool
	// interleaveProb riffles two procedures together: concurrent
	// components logging into the same session window.
	interleaveProb float64
	// benignNoise is a set of rare-but-normal event templates (GC
	// pauses, informational warnings) appearing with benignProb per
	// procedure in normal sessions.
	benignNoise []int
	benignProb  float64
	// minProcs/maxProcs bound procedures per session.
	minProcs, maxProcs int
	// anomalyKeys are template ids that only occur in abnormal sessions
	// (exceptions, error bursts).
	anomalyKeys []int
	vocab       int
}

func (g *logGrammar) chunk(rng *rand.Rand) []int {
	proc := g.procedures[rng.Intn(len(g.procedures))]
	chunk := append([]int(nil), proc...)
	if g.shuffleWithin && len(chunk) > 2 {
		// Swap one interior adjacent pair: replica events arrive in
		// nondeterministic order.
		j := 1 + rng.Intn(len(chunk)-2)
		chunk[j], chunk[j+1] = chunk[j+1], chunk[j]
	}
	return chunk
}

func (g *logGrammar) normalSession(rng *rand.Rand) []int {
	n := g.minProcs + rng.Intn(g.maxProcs-g.minProcs+1)
	var s []int
	for i := 0; i < n; i++ {
		chunk := g.chunk(rng)
		if rng.Float64() < g.interleaveProb {
			// Two components log concurrently into the same window.
			other := g.chunk(rng)
			merged := make([]int, 0, len(chunk)+len(other))
			for len(chunk) > 0 || len(other) > 0 {
				if len(other) == 0 || (len(chunk) > 0 && rng.Intn(len(chunk)+len(other)) < len(chunk)) {
					merged = append(merged, chunk[0])
					chunk = chunk[1:]
				} else {
					merged = append(merged, other[0])
					other = other[1:]
				}
			}
			chunk = merged
			i++ // consumed an extra procedure slot
		}
		if len(g.benignNoise) > 0 && rng.Float64() < g.benignProb {
			k := g.benignNoise[rng.Intn(len(g.benignNoise))]
			pos := rng.Intn(len(chunk) + 1)
			chunk = append(chunk[:pos], append([]int{k}, chunk[pos:]...)...)
		}
		s = append(s, chunk...)
	}
	return s
}

func (g *logGrammar) abnormalSession(rng *rand.Rand) []int {
	s := g.normalSession(rng)
	switch rng.Intn(3) {
	case 0: // error burst: anomaly-only templates appear
		k := g.anomalyKeys[rng.Intn(len(g.anomalyKeys))]
		pos := rng.Intn(len(s) + 1)
		burst := 1 + rng.Intn(3)
		for i := 0; i < burst; i++ {
			s = append(s[:pos], append([]int{k}, s[pos:]...)...)
		}
	case 1: // truncated procedure: drop the tail of the session
		cut := len(s) / 2
		if cut < 2 {
			cut = 2
		}
		s = s[:cut]
		s = append(s, g.anomalyKeys[rng.Intn(len(g.anomalyKeys))])
	default: // foreign-procedure interleaving plus an error event
		k := g.anomalyKeys[rng.Intn(len(g.anomalyKeys))]
		s = append(s, k)
		for i := 0; i < 2 && len(s) > 3; i++ {
			pos := rng.Intn(len(s) - 1)
			s[pos], s[pos+1] = s[pos+1], s[pos]
		}
	}
	return s
}

func (g *logGrammar) build(nTrain, nTestNormal, nTestAbnormal int, seed int64) *LogDataset {
	rng := rand.New(rand.NewSource(seed))
	d := &LogDataset{Name: g.name, Vocab: g.vocab, AnomalyKeys: g.anomalyKeys}
	for i := 0; i < nTrain; i++ {
		d.Train = append(d.Train, g.normalSession(rng))
	}
	for i := 0; i < nTestNormal; i++ {
		d.TestNormal = append(d.TestNormal, g.normalSession(rng))
	}
	for i := 0; i < nTestAbnormal; i++ {
		d.TestAbnormal = append(d.TestAbnormal, g.abnormalSession(rng))
	}
	return d
}

// hdfsGrammar is the HDFS block-lifecycle grammar shared by the batch
// dataset builder (HDFSLike) and the streaming source (NewLogSource).
func hdfsGrammar() *logGrammar {
	return &logGrammar{
		name: "HDFS",
		procedures: [][]int{
			{1, 2, 2, 2, 3, 3, 3}, // allocate, receiving x3, received x3
			{4, 4, 4},             // addStoredBlock x3
			{5, 6},                // read request, transmit
			{5, 6, 5, 6},          // repeated reads
			{7},                   // verification
			{8, 9},                // delete request, deleted
		},
		shuffleWithin:  true,
		interleaveProb: 0.15,
		benignNoise:    []int{13}, // informational fsck message
		benignProb:     0.05,
		minProcs:       2,
		maxProcs:       6,
		anomalyKeys:    []int{10, 11, 12}, // exception, timeout, redundant-replica
		vocab:          14,
	}
}

// HDFSLike simulates the HDFS block-lifecycle log: sessions are block
// ids; procedures are allocate/replicate/read/delete chains.
func HDFSLike(nTrain, nTestNormal, nTestAbnormal int, seed int64) *LogDataset {
	return hdfsGrammar().build(nTrain, nTestNormal, nTestAbnormal, seed)
}

// bglGrammar is the Blue Gene/L RAS grammar.
func bglGrammar() *logGrammar {
	return &logGrammar{
		name: "BGL",
		procedures: [][]int{
			{1, 2, 3},       // boot: power, kernel up, net up
			{4, 5, 4, 5},    // job start/heartbeat cycles
			{5, 5, 5},       // heartbeats
			{6, 7},          // checkpoint, flush
			{8},             // job end
			{3, 4, 5, 6, 7}, // long job procedure
		},
		shuffleWithin:  false,         // per-component chains are strongly ordered...
		interleaveProb: 0.45,          // ...but components log concurrently per window
		benignNoise:    []int{13, 14}, // cache-parity info, clock sync
		benignProb:     0.10,
		minProcs:       3,
		maxProcs:       8,
		anomalyKeys:    []int{9, 10, 11, 12}, // ECC error, link failure, panic, fan fault
		vocab:          15,
	}
}

// BGLLike simulates the Blue Gene/L RAS log: per-component event chains
// with kernel/network/app procedures.
func BGLLike(nTrain, nTestNormal, nTestAbnormal int, seed int64) *LogDataset {
	return bglGrammar().build(nTrain, nTestNormal, nTestAbnormal, seed)
}

// thunderbirdGrammar is the Thunderbird supercomputer syslog grammar.
func thunderbirdGrammar() *logGrammar {
	return &logGrammar{
		name: "Thunderbird",
		procedures: [][]int{
			{1, 2, 2, 3},       // session open, auth x2, env
			{4, 5, 6},          // daemon cycle
			{4, 5, 6, 4, 5, 6}, // repeated daemon cycles
			{7, 8},             // cron start/end
			{9, 3},             // config reload
			{1, 2, 3, 7, 8, 9}, // admin procedure
		},
		shuffleWithin:  false,
		interleaveProb: 0.35,      // daemons log concurrently
		benignNoise:    []int{14}, // ntp drift info
		benignProb:     0.08,
		minProcs:       4,
		maxProcs:       10,
		anomalyKeys:    []int{10, 11, 12, 13}, // oom, disk error, auth failure burst, watchdog
		vocab:          15,
	}
}

// ThunderbirdLike simulates the Thunderbird supercomputer syslog:
// longer admin/daemon procedures with a small anomaly rate.
func ThunderbirdLike(nTrain, nTestNormal, nTestAbnormal int, seed int64) *LogDataset {
	return thunderbirdGrammar().build(nTrain, nTestNormal, nTestAbnormal, seed)
}
