package workload

import (
	"fmt"
	"math/rand"
)

// Scenario-I: the online commenting (danmu) application of §6.1 /
// Table 1 — 7 tables, 20 statement keys (7 select, 4 insert, 4 update,
// 5 delete), average session length 24, insert/delete/update heavy.
//
// Roles mirror the user study (Figure 9a): viewers watch videos and post
// danmu; moderators review reports and remove content.

func sel(table, where string) StmtGen {
	return func(rng *rand.Rand) string {
		return fmt.Sprintf("SELECT * FROM %s WHERE %s = %d", table, where, rng.Intn(10000))
	}
}

// Scenario-I statement generators (20 templates).
var (
	c1SelDanmu   = sel("danmu_display", "vid")
	c1SelContent = sel("t_content", "vid")
	c1SelUser    = sel("t_user", "uid")
	c1SelLike    = sel("t_like", "danmuKey")
	c1SelSession = sel("t_session", "uid")
	c1SelStat    = sel("t_stat", "vid")
	c1SelReport  = sel("t_report", "state")

	c1InsDanmu = func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO danmu_display (vid, uid, text) VALUES (%d, %d, 'd%d')",
			rng.Intn(10000), rng.Intn(10000), rng.Intn(1e6))
	}
	c1InsLike = func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO t_like (danmuKey, uid) VALUES (%d, %d)", rng.Intn(10000), rng.Intn(10000))
	}
	c1InsReport = func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO t_report (danmuKey, uid, reason) VALUES (%d, %d, 'r%d')",
			rng.Intn(10000), rng.Intn(10000), rng.Intn(100))
	}
	c1InsSession = func(rng *rand.Rand) string {
		return fmt.Sprintf("INSERT INTO t_session (uid, token) VALUES (%d, 'tk%d')", rng.Intn(10000), rng.Intn(1e6))
	}

	c1UpdCount = func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_content SET count = %d WHERE danmuKey = %d", rng.Intn(1000), rng.Intn(10000))
	}
	c1UpdStat = func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_stat SET views = %d WHERE vid = %d", rng.Intn(1e6), rng.Intn(10000))
	}
	c1UpdUser = func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_user SET last_seen = %d WHERE uid = %d", rng.Intn(1e9), rng.Intn(10000))
	}
	c1UpdReport = func(rng *rand.Rand) string {
		return fmt.Sprintf("UPDATE t_report SET state = %d WHERE id = %d", rng.Intn(3), rng.Intn(10000))
	}

	c1DelDanmu = func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM danmu_display WHERE danmuKey = %d", rng.Intn(10000))
	}
	c1DelLike = func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_like WHERE danmuKey = %d", rng.Intn(10000))
	}
	c1DelReport = func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_report WHERE id = %d", rng.Intn(10000))
	}
	c1DelSession = func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_session WHERE uid = %d", rng.Intn(10000))
	}
	c1DelStat = func(rng *rand.Rand) string {
		return fmt.Sprintf("DELETE FROM t_stat WHERE vid = %d", rng.Intn(10000))
	}
)

func steps(gens ...StmtGen) TaskGen {
	return func(rng *rand.Rand) []string {
		out := make([]string, len(gens))
		for i, g := range gens {
			out[i] = g(rng)
		}
		return out
	}
}

// ScenarioI returns the commenting-application spec.
func ScenarioI() Spec {
	viewers := RoleSpec{
		Name:   "viewer",
		Weight: 0.85,
		Users:  []string{"user1", "user2", "user3", "user4"},
		Addrs:  []string{"10.0.1.11", "10.0.1.12", "10.0.1.13"},
		Tasks: []TaskGen{
			steps(c1InsSession, c1SelUser, c1UpdUser),             // login
			steps(c1SelContent, c1SelDanmu, c1SelStat),            // watch with danmu on
			steps(c1InsDanmu, c1UpdCount, c1SelDanmu),             // post a danmu
			steps(c1SelDanmu, c1SelLike, c1InsLike, c1UpdStat),    // like a danmu
			steps(c1SelDanmu, c1InsReport),                        // report a danmu
			steps(c1InsDanmu, c1UpdCount, c1SelDanmu, c1DelDanmu), // post then retract
		},
		Weights:         []float64{1.5, 3, 2.5, 2, 0.8, 1},
		TasksPerSession: 3,
	}
	moderators := RoleSpec{
		Name:   "moderator",
		Weight: 0.15,
		Users:  []string{"mod1", "mod2"},
		Addrs:  []string{"10.0.2.21", "10.0.2.22"},
		Tasks: []TaskGen{
			steps(c1SelReport, c1SelDanmu, c1UpdReport),            // review a report
			steps(c1SelReport, c1DelDanmu, c1DelLike, c1DelReport), // remove content
			steps(c1InsSession, c1SelUser, c1UpdUser),              // login
		},
		Weights:         []float64{3, 2, 1},
		TasksPerSession: 2,
		RareTasks: []TaskGen{
			steps(c1SelSession, c1DelSession, c1DelStat), // periodic cleanup
		},
		RareProb: 0.06,
	}
	return Spec{
		Name:           "scenario-i",
		AvgLen:         24,
		LenJitter:      0.25,
		InterleaveProb: 0,
		ShuffleProb:    0.1,
		Roles:          []RoleSpec{viewers, moderators},
		RichSelects: []StmtGen{
			c1SelDanmu, c1SelContent, c1SelUser, c1SelLike, c1SelSession, c1SelStat, c1SelReport,
		},
		// Statements whose templates the vocabulary knows (moderators use
		// them) but that are foreign to the dominant viewer sessions'
		// intent — the Figure 1 style stealthy delete.
		SensitiveOps: []StmtGen{
			c1DelReport, c1DelSession, c1DelStat, c1UpdReport, c1SelReport,
		},
		RareOps: []StmtGen{
			c1SelSession, c1DelSession, c1DelStat, c1InsReport, c1UpdReport,
		},
	}
}
