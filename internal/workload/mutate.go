package workload

import (
	"fmt"

	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
)

// PartialSwap builds a V2 session (§6.1): partially interchangeable
// operations — consecutive statements with the same command on different
// tables — are swapped. The session goal is preserved because no
// statement is added or removed and only order-free pairs move.
func (g *Generator) PartialSwap(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-swap"
	// The paper swaps a handful of manually verified interchangeable
	// pairs per session ("partially swap"), not every candidate.
	swapped := 0
	const maxSwaps = 3
	for i := 0; i+1 < len(out.Ops) && swapped < maxSwaps; i++ {
		a, b := &out.Ops[i], &out.Ops[i+1]
		if a.Command() == b.Command() && a.Table() != b.Table() && g.rng.Float64() < 0.35 {
			out.Ops[i], out.Ops[i+1] = out.Ops[i+1], out.Ops[i]
			swapped++
			i++ // do not re-swap the same pair
		}
	}
	g.restamp(out)
	return out
}

// PartialRemove builds a V3 session (§6.1): operations irrelevant to
// the session goal — a user performing the same operation repeatedly in
// immediate succession — are partially removed. Only consecutive
// duplicate templates are dropped, which provably preserves both the
// session goal and its task structure (the paper verifies its removals
// manually; this restriction makes the guarantee mechanical).
func (g *Generator) PartialRemove(s *session.Session) *session.Session {
	out := &session.Session{ID: s.ID + "-remove", User: s.User, Addr: s.Addr}
	prev := ""
	for _, op := range s.Ops {
		tpl := sqlnorm.Abstract(op.SQL)
		if tpl == prev && g.rng.Float64() < 0.6 {
			continue // drop an immediate repeat
		}
		prev = tpl
		out.Ops = append(out.Ops, op)
	}
	if len(out.Ops) < 4 { // keep the session meaningful
		out.Ops = append([]session.Operation(nil), s.Ops[:4]...)
	}
	g.restamp(out)
	return out
}

// AbusePrivilege builds an A1 session (§6.1): repeatedly or randomly
// chosen select operations — beyond normal business needs — are combined
// with a normal session.
func (g *Generator) AbusePrivilege(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-abuse"
	// Retrieve confidential data at scale: 30–60% extra selects, some
	// repeated (the "repeatedly chosen" variant).
	extra := len(s.Ops)*3/10 + g.rng.Intn(len(s.Ops)*3/10+1)
	if extra < 3 {
		extra = 3
	}
	pick := g.spec.RichSelects[g.rng.Intn(len(g.spec.RichSelects))]
	for i := 0; i < extra; i++ {
		if g.rng.Float64() < 0.5 {
			pick = g.spec.RichSelects[g.rng.Intn(len(g.spec.RichSelects))]
		}
		pos := g.rng.Intn(len(out.Ops) + 1)
		op := session.Operation{SQL: pick(g.rng)}
		out.Ops = append(out.Ops[:pos], append([]session.Operation{op}, out.Ops[pos:]...)...)
	}
	g.restamp(out)
	return out
}

// StealCredential builds an A2 session (§6.1): fewer than 10% new
// operations — sensitive deletes and statements foreign to the session's
// intent — are hidden inside a normal session. This is the stealthiest
// anomaly class.
func (g *Generator) StealCredential(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-steal"
	n := len(s.Ops) / 10
	if n < 1 {
		n = 1
	}
	count := 1 + g.rng.Intn(n)
	for i := 0; i < count; i++ {
		gen := g.spec.SensitiveOps[g.rng.Intn(len(g.spec.SensitiveOps))]
		// Never inject at the very start: the attacker hides inside
		// ongoing normal activity.
		pos := 2 + g.rng.Intn(len(out.Ops)-1)
		op := session.Operation{SQL: gen(g.rng)}
		out.Ops = append(out.Ops[:pos], append([]session.Operation{op}, out.Ops[pos:]...)...)
	}
	g.restamp(out)
	return out
}

// Misoperate builds an A3 session (§6.1): rarely performed normal
// operations randomly combined — the behavior of an inexperienced staff
// member whose actions are not logically consistent.
func (g *Generator) Misoperate(avgLen int) *session.Session {
	g.seq++
	role := &g.spec.Roles[g.rng.Intn(len(g.spec.Roles))]
	s := &session.Session{
		ID:   fmt.Sprintf("%s-mis-%06d", g.spec.Name, g.seq),
		User: role.Users[g.rng.Intn(len(role.Users))],
		Addr: role.Addrs[g.rng.Intn(len(role.Addrs))],
	}
	target := avgLen/2 + g.rng.Intn(avgLen/2+1)
	if target < 6 {
		target = 6
	}
	for len(s.Ops) < target {
		gen := g.spec.RareOps[g.rng.Intn(len(g.spec.RareOps))]
		s.Ops = append(s.Ops, session.Operation{SQL: gen(g.rng)})
	}
	g.restamp(s)
	return s
}

// Suite bundles the datasets of one scenario exactly as §6.1 defines
// them: training set T, normal test sets V1/V2/V3 and abnormal sets
// A1/A2/A3, each test set the same size as V1.
type Suite struct {
	Scenario string
	Train    []*session.Session
	Normal   map[string][]*session.Session
	Abnormal map[string][]*session.Session
}

// BuildSuite generates `sessions` normal sessions, splits them 8:2 into
// T and V1, derives V2/V3 by mutation and A1/A2/A3 by the three attack
// syntheses.
func (g *Generator) BuildSuite(sessions int) *Suite {
	all := g.GenerateSessions(sessions)
	split := sessions * 8 / 10
	train, v1 := all[:split], all[split:]

	suite := &Suite{
		Scenario: g.spec.Name,
		Train:    train,
		Normal:   map[string][]*session.Session{"V1": v1},
		Abnormal: map[string][]*session.Session{},
	}
	for _, s := range v1 {
		suite.Normal["V2"] = append(suite.Normal["V2"], g.PartialSwap(s))
		suite.Normal["V3"] = append(suite.Normal["V3"], g.PartialRemove(s))
		suite.Abnormal["A1"] = append(suite.Abnormal["A1"], g.AbusePrivilege(s))
		suite.Abnormal["A2"] = append(suite.Abnormal["A2"], g.StealCredential(s))
		suite.Abnormal["A3"] = append(suite.Abnormal["A3"], g.Misoperate(g.spec.AvgLen))
	}
	return suite
}

// Contaminate returns a training set with `ratio` of its sessions
// replaced by synthetic abnormal sessions — the hybrid dataset of the
// robustness experiment (§6.5).
func (g *Generator) Contaminate(train []*session.Session, ratio float64) []*session.Session {
	out := append([]*session.Session(nil), train...)
	n := int(float64(len(train)) * ratio)
	perm := g.rng.Perm(len(train))
	for i := 0; i < n && i < len(perm); i++ {
		victim := out[perm[i]]
		switch g.rng.Intn(3) {
		case 0:
			out[perm[i]] = g.AbusePrivilege(victim)
		case 1:
			out[perm[i]] = g.StealCredential(victim)
		default:
			out[perm[i]] = g.Misoperate(g.spec.AvgLen)
		}
	}
	return out
}

// Keyed tokenizes a set of sessions into key sequences using an already
// built vocabulary (detection-stage semantics: unseen templates map to
// k0).
func Keyed(v *sqlnorm.Vocabulary, sessions []*session.Session) [][]int {
	out := make([][]int, len(sessions))
	for i, s := range sessions {
		keys := make([]int, len(s.Ops))
		for j := range s.Ops {
			keys[j] = v.Key(s.Ops[j].SQL)
		}
		out[i] = keys
	}
	return out
}
