package workload

import (
	"strings"

	"github.com/ucad/ucad/internal/session"
)

// This file extends §6.1's A1/A2/A3 taxonomy with three attack families
// observed in production audit-log incidents and absent from the
// paper's evaluation:
//
//   - A4 low-and-slow exfiltration: a campaign that drips one or two
//     confidential reads into each of many sessions, staying far below
//     A1's volume so per-session evidence is minimal.
//   - A5 privilege-escalation orderings: no foreign statement at all —
//     operations that legitimately close a task are executed before the
//     preparatory reads that normally justify them, a pure
//     order-of-execution anomaly.
//   - A6 mass-delete bursts: a sabotage/ransom run of consecutive
//     deletes using templates the vocabulary knows, at a rate no normal
//     session exhibits.
//
// All three draw from the scenario's existing statement pools, so (in
// contrast to naive out-of-vocabulary probes) detection must come from
// context, not from unknown templates.

// ExfiltrateSlow builds an A4 session: 1–2 rich selects — the same
// campaign target across every infected session — hidden at scattered
// positions. Compare AbusePrivilege (A1), which injects 30–60% extra.
func (g *Generator) ExfiltrateSlow(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-exfil"
	if g.a4pick == nil {
		// One campaign, one target: every A4 session leaks through the
		// same select template.
		g.a4pick = g.spec.RichSelects[g.rng.Intn(len(g.spec.RichSelects))]
	}
	count := 1 + g.rng.Intn(2)
	for i := 0; i < count; i++ {
		// Never at the head: the drip hides inside established context.
		pos := 3 + g.rng.Intn(len(out.Ops)-2)
		op := session.Operation{SQL: g.a4pick(g.rng)}
		out.Ops = append(out.Ops[:pos], append([]session.Operation{op}, out.Ops[pos:]...)...)
	}
	g.restamp(out)
	return out
}

// EscalatePrivilege builds an A5 session: a block of operations from
// the session's tail — the writes that normally conclude a task — is
// moved up front, executing before the reads that justify them. The
// multiset of statements is unchanged; only the order is anomalous.
func (g *Generator) EscalatePrivilege(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-escalate"
	n := len(out.Ops)
	if n < 8 {
		g.restamp(out)
		return out
	}
	// Move 3–4 consecutive tail operations to just after the session
	// opening (past the scoring warm-up, so the violation is visible to
	// a detector with a minimum-context threshold).
	blk := 3 + g.rng.Intn(2)
	from := n - blk - g.rng.Intn(n/4+1)
	if from < n/2 {
		from = n / 2
	}
	if from+blk > n {
		blk = n - from
	}
	moved := append([]session.Operation(nil), out.Ops[from:from+blk]...)
	rest := append(append([]session.Operation(nil), out.Ops[:from]...), out.Ops[from+blk:]...)
	at := 3
	out.Ops = append(append(append([]session.Operation(nil), rest[:at]...), moved...), rest[at:]...)
	g.restamp(out)
	return out
}

// MassDelete builds an A6 session: a burst of 6–10 consecutive deletes
// (known templates, abnormal rate) dropped mid-session — the signature
// of sabotage or a ransom wipe.
func (g *Generator) MassDelete(s *session.Session) *session.Session {
	out := s.Clone()
	out.ID = s.ID + "-wipe"
	gens := g.deleteGens()
	burst := 6 + g.rng.Intn(5)
	pos := 3
	if len(out.Ops) > 3 {
		pos = 3 + g.rng.Intn(len(out.Ops)-2)
	}
	ops := make([]session.Operation, burst)
	for i := range ops {
		ops[i] = session.Operation{SQL: gens[g.rng.Intn(len(gens))](g.rng)}
	}
	out.Ops = append(out.Ops[:pos], append(ops, out.Ops[pos:]...)...)
	g.restamp(out)
	return out
}

// deleteGens returns the scenario's delete-shaped statement generators,
// falling back to the full sensitive pool if the spec has none.
func (g *Generator) deleteGens() []StmtGen {
	var dels []StmtGen
	for _, pool := range [][]StmtGen{g.spec.SensitiveOps, g.spec.RareOps} {
		for _, gen := range pool {
			if strings.HasPrefix(strings.ToUpper(gen(g.rng)), "DELETE") {
				dels = append(dels, gen)
			}
		}
	}
	if len(dels) == 0 {
		dels = g.spec.SensitiveOps
	}
	return dels
}

// ExtendAttacks appends the A4/A5/A6 sets to a built suite, one derived
// session per V1 session — the same sizing rule §6.1 uses for A1–A3.
// It draws randomness after BuildSuite finished, so the suite's
// original sets are byte-identical to what BuildSuite alone produces.
func (g *Generator) ExtendAttacks(suite *Suite) {
	for _, s := range suite.Normal["V1"] {
		suite.Abnormal["A4"] = append(suite.Abnormal["A4"], g.ExfiltrateSlow(s))
		suite.Abnormal["A5"] = append(suite.Abnormal["A5"], g.EscalatePrivilege(s))
		suite.Abnormal["A6"] = append(suite.Abnormal["A6"], g.MassDelete(s))
	}
}
