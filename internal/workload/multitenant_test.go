package workload

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ucad/ucad/internal/sqlnorm"
)

// TestLogSourceRendering: log-template ids render as SQL whose
// normalized templates are distinct per id, anomalous sessions use the
// grammar's anomaly-only keys, and a fixed seed reproduces the stream.
func TestLogSourceRendering(t *testing.T) {
	src, err := NewLogSource("hdfs", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogSource("nonesuch", 1, 0); err == nil {
		t.Fatal("unknown corpus accepted")
	}

	// Distinct template ids → distinct vocabulary keys: the identifier
	// lexer keeps digits, so LOG_HDFS_EVT_7 is one token.
	v := sqlnorm.NewVocabulary()
	keys := map[int]bool{}
	for id := 1; id < 14; id++ {
		keys[v.Learn(src.SQL(id))] = true
	}
	if len(keys) != 13 {
		t.Fatalf("13 template ids map to %d vocabulary keys", len(keys))
	}

	normal := src.NextSession()
	if normal.Anomalous || len(normal.Statements) == 0 || normal.ClientID == "" || normal.User == "" {
		t.Fatalf("normal session: %+v", normal)
	}
	for _, sql := range normal.Statements {
		if !strings.Contains(sql, "LOG_HDFS_EVT_") {
			t.Fatalf("statement %q not a rendered log key", sql)
		}
		for _, bad := range []string{"LOG_HDFS_EVT_10", "LOG_HDFS_EVT_11", "LOG_HDFS_EVT_12"} {
			if strings.Contains(sql, bad) {
				t.Fatalf("normal session used anomaly-only key: %q", sql)
			}
		}
	}

	// With anomalyProb=1 every session is anomalous, and the grammar's
	// recipes guarantee at least one anomaly-only key per session.
	asrc, err := NewLogSource("hdfs", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s := asrc.NextSession()
		if !s.Anomalous {
			t.Fatal("anomalyProb=1 produced a normal session")
		}
		found := false
		for _, sql := range s.Statements {
			for _, k := range []string{"LOG_HDFS_EVT_10", "LOG_HDFS_EVT_11", "LOG_HDFS_EVT_12"} {
				found = found || strings.Contains(sql, k)
			}
		}
		if !found {
			t.Fatalf("anomalous session carries no anomaly key: %v", s.Statements)
		}
	}

	// Determinism: same corpus + seed → identical sessions.
	a, _ := NewLogSource("bgl", 42, 0.3)
	b, _ := NewLogSource("bgl", 42, 0.3)
	for i := 0; i < 10; i++ {
		if sa, sb := a.NextSession(), b.NextSession(); !reflect.DeepEqual(sa, sb) {
			t.Fatalf("session %d diverged:\n%+v\n%+v", i, sa, sb)
		}
	}
}

// TestScenarioSourceAnomalies: the scenario source honors the anomaly
// rate and produces complete sessions.
func TestScenarioSourceAnomalies(t *testing.T) {
	clean := NewScenarioSource(ScenarioI(), 11, 0)
	for i := 0; i < 5; i++ {
		s := clean.NextSession()
		if s.Anomalous {
			t.Fatal("anomalyProb=0 produced an anomalous session")
		}
		if len(s.Statements) < 4 || s.ClientID == "" || s.User == "" || s.Addr == "" {
			t.Fatalf("session: %+v", s)
		}
	}
	dirty := NewScenarioSource(ScenarioI(), 11, 1)
	for i := 0; i < 5; i++ {
		if s := dirty.NextSession(); !s.Anomalous {
			t.Fatal("anomalyProb=1 produced a normal session")
		}
	}
}

// TestMultiGenInterleaving: the combined stream covers every tenant,
// interleaves them, keeps each client id on one tenant with its events
// in session order, and is deterministic for a fixed seed.
func TestMultiGenInterleaving(t *testing.T) {
	build := func() *MultiGen {
		hdfs, err := NewLogSource("hdfs", 3, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return NewMultiGen(99,
			TenantStream{Tenant: "s1", Source: NewScenarioSource(ScenarioI(), 1, 0.1)},
			TenantStream{Tenant: "s2", Source: NewScenarioSource(ScenarioII(0.5), 2, 0.1)},
			TenantStream{Tenant: "logs", Source: hdfs, Weight: 2},
		)
	}
	events := build().Take(600)

	seen := map[string]int{}
	switches := 0
	clientTenant := map[string]string{}
	lastSQL := map[string][]string{}
	for i, ev := range events {
		seen[ev.Tenant]++
		if i > 0 && events[i-1].Tenant != ev.Tenant {
			switches++
		}
		if prev, ok := clientTenant[ev.ClientID]; ok && prev != ev.Tenant {
			t.Fatalf("client %q appeared on tenants %q and %q", ev.ClientID, prev, ev.Tenant)
		}
		clientTenant[ev.ClientID] = ev.Tenant
		lastSQL[ev.ClientID] = append(lastSQL[ev.ClientID], ev.SQL)
		if ev.SQL == "" || ev.User == "" {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
	}
	for _, tenant := range []string{"s1", "s2", "logs"} {
		if seen[tenant] == 0 {
			t.Fatalf("tenant %q never emitted (%v)", tenant, seen)
		}
	}
	if seen["logs"] <= seen["s1"] {
		t.Fatalf("weight 2 tenant emitted %d <= unit-weight %d", seen["logs"], seen["s1"])
	}
	if switches < 50 {
		t.Fatalf("stream barely interleaves: %d tenant switches in 600 events", switches)
	}

	// SessionEnd closes exactly the clients whose streams are complete.
	ended := map[string]bool{}
	for _, ev := range events {
		if ended[ev.ClientID] {
			t.Fatalf("client %q emitted after SessionEnd", ev.ClientID)
		}
		if ev.SessionEnd {
			ended[ev.ClientID] = true
		}
	}

	// Determinism: an identically seeded generator replays the stream.
	if again := build().Take(600); !reflect.DeepEqual(events, again) {
		t.Fatal("identically seeded MultiGen diverged")
	}
}
