// Locationservice reproduces the paper's second user-study case (§6.7,
// Figure 9b): a maliciously repackaged app steals a legitimate app's
// credential and floods manipulated location reports, then wipes its
// trail. UCAD flags the session because the operation pattern deviates
// from the contextual intent of authenticated reporting.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/minidb"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/workload"
)

func main() {
	// The generator synthesizes the reporting/fingerprint workload; a
	// minidb instance executes the location-reporting hot path so the
	// anomaly replays against a real engine.
	gen := workload.NewGenerator(workload.ScenarioII(0.12), 11)
	normal := gen.GenerateSessions(150)

	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden, cfg.Model.Heads, cfg.Model.Blocks = 32, 4, 2
	cfg.Model.Window, cfg.Model.TopP = 60, 10
	cfg.Model.Epochs = 8
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 3
	detector, err := core.Train(cfg, normal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d sessions, %d templates\n", len(normal), detector.Vocab.Size()-1)

	// Execute the attack against a live engine to produce its audit log.
	db := minidb.NewDB()
	clock := time.Date(2022, 6, 13, 12, 0, 0, 0, time.UTC)
	db.Now = func() time.Time { clock = clock.Add(200 * time.Millisecond); return clock }
	setup := db.Connect("dba", "127.0.0.1", "setup")
	for _, stmt := range []string{
		"CREATE TABLE t_auth (dev INT, token TEXT, last_ts INT)",
		"CREATE TABLE t_dev (dev INT, last_seen INT)",
		"CREATE TABLE loc_rm (dev INT, lat INT, lon INT, ts INT)",
	} {
		if _, err := setup.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	db.ResetAudit()

	evil := db.Connect("app2", "172.16.0.11", "repackaged-app")
	mustExec(evil, "SELECT token FROM t_auth WHERE dev = 9021") // stolen credential check
	for i := 0; i < 14; i++ {                                   // manipulated location flood
		mustExec(evil, fmt.Sprintf("INSERT INTO loc_rm (dev, lat, lon, ts) VALUES (9021, %d, %d, %d)", i, 2*i, 1655000000+i))
	}
	mustExec(evil, "DELETE FROM loc_rm WHERE dev = 9021") // wipe the trail

	for _, s := range session.Sessionize(db.AuditLog(), time.Hour) {
		bad := detector.DetectSession(s)
		fmt.Printf("session %s (%d ops): anomalous=%v\n", s.ID, len(s.Ops), len(bad) > 0)
		for _, idx := range bad {
			fmt.Printf("  suspicious op[%d]: %s\n", idx, s.Ops[idx].SQL)
		}
	}

	// Contrast: a legitimate reporter session passes.
	probe := gen.NewSession()
	fmt.Printf("legitimate session %s (%d ops): anomalous=%v\n",
		probe.ID, len(probe.Ops), detector.IsAnomalous(probe))
}

func mustExec(c *minidb.Conn, sql string) {
	if _, err := c.Exec(sql); err != nil {
		log.Fatalf("%q: %v", sql, err)
	}
}
