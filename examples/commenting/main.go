// Commenting reproduces the paper's first user-study case (§6.7,
// Figure 9a): a live-video commenting application backed by the minidb
// SQL engine. A bot impersonates a legitimate client and posts danmu
// (bullet-screen comments) without ever opening the danmu panel; UCAD
// flags the session from the audit log alone.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/minidb"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/workload"
)

// schema creates the commenting application's seven tables.
var schema = []string{
	"CREATE TABLE danmu_display (vid INT, uid INT, text TEXT, danmuKey INT)",
	"CREATE TABLE t_content (vid INT, danmuKey INT, count INT)",
	"CREATE TABLE t_user (uid INT, last_seen INT)",
	"CREATE TABLE t_like (danmuKey INT, uid INT)",
	"CREATE TABLE t_report (id INT, danmuKey INT, uid INT, reason TEXT, state INT)",
	"CREATE TABLE t_session (uid INT, token TEXT)",
	"CREATE TABLE t_stat (vid INT, views INT)",
}

func main() {
	db := minidb.NewDB()
	clock := time.Date(2022, 6, 12, 9, 0, 0, 0, time.UTC)
	db.Now = func() time.Time { clock = clock.Add(time.Second); return clock }

	admin := db.Connect("dba", "127.0.0.1", "schema-setup")
	for _, stmt := range schema {
		if _, err := admin.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	db.ResetAudit() // schema setup is not user activity

	// Replay synthetic normal user activity through the real SQL engine;
	// the audit log UCAD trains on is produced by actual execution.
	gen := workload.NewGenerator(workload.ScenarioI(), 7)
	for _, s := range gen.GenerateSessions(120) {
		conn := db.Connect(s.User, s.Addr, s.ID)
		for _, op := range s.Ops {
			if _, err := conn.Exec(op.SQL); err != nil {
				log.Fatalf("replay %q: %v", op.SQL, err)
			}
		}
	}
	auditOps := db.AuditLog()
	fmt.Printf("audit log: %d operations executed through minidb\n", len(auditOps))

	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Blocks = 2
	cfg.Model.Epochs = 10
	cfg.Model.Dropout = 0
	cfg.Model.TopP = 8
	cfg.Model.MinContext = 3
	cfg.IdleGap = time.Hour
	detector, err := core.Train(cfg, session.Sessionize(auditOps, time.Hour), nil)
	if err != nil {
		log.Fatal(err)
	}

	// The bot session (Figure 9a): it reads videos it never commented
	// on, then immediately posts a danmu and likes it — without the
	// select on danmu_display that the "open danmu" button generates.
	db.ResetAudit()
	bot := db.Connect("user1", "10.0.1.11", "bot-session")
	for i := 0; i < 6; i++ {
		mustExec(bot, "SELECT * FROM t_content WHERE vid = 701")
		mustExec(bot, "SELECT * FROM t_user WHERE uid = 42")
		mustExec(bot, "INSERT INTO danmu_display (vid, uid, text) VALUES (701, 42, 'great!')")
		mustExec(bot, "INSERT INTO t_like (danmuKey, uid) VALUES (88, 42)")
	}
	botSessions := session.Sessionize(db.AuditLog(), time.Hour)
	for _, s := range botSessions {
		bad := detector.DetectSession(s)
		fmt.Printf("session %s (%d ops): anomalous=%v\n", s.ID, len(s.Ops), len(bad) > 0)
		for _, idx := range bad {
			fmt.Printf("  suspicious op[%d]: %s\n", idx, s.Ops[idx].SQL)
		}
	}

	// A genuine viewer doing the same volume of activity passes.
	db.ResetAudit()
	human := gen.NewSession()
	conn := db.Connect(human.User, human.Addr, "human-session")
	for _, op := range human.Ops {
		mustExec(conn, op.SQL)
	}
	for _, s := range session.Sessionize(db.AuditLog(), time.Hour) {
		fmt.Printf("session %s (%d ops): anomalous=%v\n", s.ID, len(s.Ops), detector.IsAnomalous(s))
	}
}

func mustExec(c *minidb.Conn, sql string) {
	if _, err := c.Exec(sql); err != nil {
		log.Fatalf("%q: %v", sql, err)
	}
}
