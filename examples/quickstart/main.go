// Quickstart: train UCAD on a synthetic audit log and detect a stealthy
// credential-stealing anomaly hidden inside a normal session.
package main

import (
	"fmt"
	"log"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/workload"
)

func main() {
	// 1. Synthesize normal activity for the paper's commenting scenario.
	gen := workload.NewGenerator(workload.ScenarioI(), 42)
	normal := gen.GenerateSessions(120)

	// 2. Train the detector (vocabulary building, noise removal and
	//    Trans-DAS training all happen inside core.Train).
	cfg := core.DefaultConfig()
	cfg.SkipClean = true // tiny demo set; keep every session
	cfg.Model.Blocks = 2
	cfg.Model.Epochs = 10
	cfg.Model.Dropout = 0
	cfg.Model.TopP = 8
	cfg.Model.MinContext = 3
	detector, err := core.Train(cfg, normal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d statement templates in vocabulary\n", detector.Vocab.Size()-1)

	// 3. A fresh normal session passes.
	probe := gen.NewSession()
	fmt.Printf("normal session (%d ops): anomalous=%v\n",
		len(probe.Ops), detector.IsAnomalous(probe))

	// 4. The same session with a stealthy injected operation — a
	//    moderator-only delete executed with a stolen viewer credential —
	//    is flagged, and the suspicious operation is pinpointed.
	attacked := gen.StealCredential(probe)
	bad := detector.DetectSession(attacked)
	fmt.Printf("attacked session (%d ops): anomalous=%v\n", len(attacked.Ops), len(bad) > 0)
	for _, idx := range bad {
		fmt.Printf("  suspicious op[%d]: %s\n", idx, attacked.Ops[idx].SQL)
	}
}
