// Loganomaly demonstrates the transfer task of §6.6: the same Trans-DAS
// detector, trained on sessionized system-log template sequences instead
// of SQL keys, detects anomalous HDFS-like block lifecycles.
package main

import (
	"fmt"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/metrics"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/workload"
)

func main() {
	// Block-lifecycle log sessions: ~3% anomalous, as in the real HDFS
	// benchmark.
	data := workload.HDFSLike(300, 100, 100, 5)
	fmt.Printf("%s-like dataset: %d train, %d normal test, %d abnormal test sessions\n",
		data.Name, len(data.Train), len(data.TestNormal), len(data.TestAbnormal))

	// The paper's transfer configuration: L=10, g=0.5 (§6.6) — the
	// detector consumes template-id sequences directly.
	cfg := transdas.DefaultConfig(2)
	cfg.Window = 10
	cfg.Hidden, cfg.Heads, cfg.Blocks = 16, 2, 2
	cfg.TopP = 4
	cfg.Epochs = 8
	cfg.Dropout = 0
	cfg.MinContext = 2
	ucad := core.NewDetector(cfg)
	ucad.Fit(data.Train)

	ev := metrics.Evaluate(ucad,
		map[string][][]int{"normal": data.TestNormal},
		map[string][][]int{"abnormal": data.TestAbnormal})
	fmt.Printf("UCAD on %s-like logs: precision=%.3f recall=%.3f F1=%.3f\n",
		data.Name, ev.Precision, ev.Recall, ev.F1)

	// Show one detection: the first abnormal session and the template
	// positions UCAD rejects.
	anomaly := data.TestAbnormal[0]
	bad := ucad.Model().DetectSession(anomaly)
	fmt.Printf("abnormal session %v\n  flagged positions: %v\n", anomaly, bad)
}
