module github.com/ucad/ucad

go 1.22
