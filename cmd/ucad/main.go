// Command ucad trains the detector on a database audit log and detects
// anomalous sessions in another log.
//
// Usage:
//
//	ucad train  -log normal.jsonl -model ucad.model [-epochs 20] [-train-workers N] [-batch-size B]
//	ucad detect -log active.jsonl -model ucad.model
//
// Audit logs are JSON lines with fields ts, user, addr, session_id and
// sql (see internal/session). cmd/tracegen produces compatible logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		runTrain(os.Args[2:])
	case "detect":
		runDetect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ucad train|detect -log FILE -model FILE [flags]")
	os.Exit(2)
}

func runTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	logPath := fs.String("log", "", "audit log (JSON lines) of normal activity")
	modelPath := fs.String("model", "ucad.model", "output model file")
	epochs := fs.Int("epochs", 0, "override training epochs")
	window := fs.Int("window", 0, "override input window L")
	topP := fs.Int("p", 0, "override detection top-p")
	hidden := fs.Int("hidden", 0, "override latent dimension h")
	skipClean := fs.Bool("skip-clean", false, "disable clustering-based noise removal")
	seed := fs.Int64("seed", 1, "random seed")
	trainWorkers := fs.Int("train-workers", 1, "data-parallel training workers (<=0 uses all CPUs; 1 with -batch-size 1 is the paper's sequential SGD)")
	batchSize := fs.Int("batch-size", 1, "windows per SGD step (gradients are summed across the mini-batch)")
	metricsOut := fs.String("metrics-out", "", "write training metrics (Prometheus text format) to this file")
	fs.Parse(args)
	if *logPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*logPath)
	fatalIf(err)
	defer f.Close()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Model.Seed = *seed
	cfg.SkipClean = *skipClean
	if *epochs > 0 {
		cfg.Model.Epochs = *epochs
	}
	if *window > 0 {
		cfg.Model.Window = *window
	}
	if *topP > 0 {
		cfg.Model.TopP = *topP
	}
	if *hidden > 0 {
		cfg.Model.Hidden = *hidden
		for cfg.Model.Hidden%cfg.Model.Heads != 0 {
			cfg.Model.Heads--
		}
	}
	cfg.Model.TrainWorkers = *trainWorkers
	cfg.Model.BatchSize = *batchSize

	// Training instrumentation: the same obs gauges the serving layer
	// exports feed the progress printout, and -metrics-out persists the
	// final exposition for offline comparison of training runs.
	reg := obs.NewRegistry()
	epochLoss := reg.Gauge("ucad_train_epoch_loss", "Mean per-position loss of the most recent epoch.")
	epochsTotal := reg.Counter("ucad_train_epochs_total", "Training epochs completed.")
	epochSeconds := reg.Histogram("ucad_train_epoch_seconds", "Wall-clock duration per training epoch.",
		obs.ExponentialBuckets(0.01, 4, 8))
	workersGauge := reg.Gauge("ucad_train_workers", "Data-parallel training workers in use.")
	workersGauge.Set(float64(cfg.Model.EffectiveTrainWorkers()))

	fmt.Printf("training: %d workers, batch size %d\n",
		cfg.Model.EffectiveTrainWorkers(), *batchSize)
	start := time.Now()
	lastEpoch := start
	u, err := core.TrainFromLog(cfg, f, func(epoch int, loss float64) {
		now := time.Now()
		epochLoss.Set(loss)
		epochsTotal.Inc()
		epochSeconds.Observe(now.Sub(lastEpoch).Seconds())
		lastEpoch = now
		fmt.Printf("epoch %3d  loss %.5f\n", epoch+1, epochLoss.Value())
	})
	fatalIf(err)
	fmt.Printf("trained on %d templates in %s (noise removal: %d -> %d sessions)\n",
		u.Vocab.Size()-1, time.Since(start).Round(time.Millisecond),
		u.Report.Input, u.Report.Output)
	if n := epochsTotal.Value(); n > 0 {
		fmt.Printf("epochs %d  final loss %.5f  median epoch %s\n",
			n, epochLoss.Value(), time.Duration(epochSeconds.Quantile(0.5)*float64(time.Second)).Round(time.Millisecond))
	}
	if *metricsOut != "" {
		fatalIf(wal.WriteAtomic(*metricsOut, reg.WriteText))
		fmt.Println("training metrics written to", *metricsOut)
	}

	// Atomic save: a crash mid-write can truncate a directly written
	// model file into an unloadable stub; WriteAtomic (temp file, fsync,
	// rename, dir fsync) leaves either the old model or the new one.
	fatalIf(wal.WriteAtomic(*modelPath, u.Save))
	fmt.Println("model written to", *modelPath)
}

func runDetect(args []string) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	logPath := fs.String("log", "", "audit log (JSON lines) of active sessions")
	modelPath := fs.String("model", "ucad.model", "trained model file")
	idleGap := fs.Duration("idle-gap", 10*time.Minute, "session split gap for logs without session ids")
	verbose := fs.Bool("v", false, "print every session verdict")
	fs.Parse(args)
	if *logPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	fatalIf(err)
	u, err := core.Load(mf)
	mf.Close()
	fatalIf(err)

	lf, err := os.Open(*logPath)
	fatalIf(err)
	defer lf.Close()
	ops, err := session.ReadLog(lf)
	fatalIf(err)
	sessions := session.Sessionize(ops, *idleGap)

	flagged := 0
	for _, s := range sessions {
		bad := u.DetectSession(s)
		if len(bad) == 0 {
			if *verbose {
				fmt.Printf("OK      %-24s user=%s ops=%d\n", s.ID, s.User, len(s.Ops))
			}
			continue
		}
		flagged++
		fmt.Printf("ANOMALY %-24s user=%s ops=%d suspicious=%v\n", s.ID, s.User, len(s.Ops), bad)
		for _, idx := range bad {
			if idx < len(s.Ops) {
				fmt.Printf("        op[%d]: %s\n", idx, s.Ops[idx].SQL)
			}
		}
	}
	fmt.Printf("%d of %d sessions flagged\n", flagged, len(sessions))
	if flagged > 0 {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad:", err)
		os.Exit(1)
	}
}
