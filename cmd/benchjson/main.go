// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document — the artifact CI archives per PR so
// throughput regressions are diffable across builds without scraping
// logs.
//
// Usage:
//
//	go test -bench=. -run='^$' . | benchjson -o BENCH.json
//
// Non-benchmark lines (test chatter, PASS/ok trailers) are ignored, so
// the output of several concatenated `go test` runs can be piped
// through at once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "BENCH.json", "output file (- writes to stdout)")
	flag.Parse()

	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// Doc is the converted benchmark report.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: its name (Benchmark prefix and
// -GOMAXPROCS suffix stripped), iteration count, and every reported
// metric keyed by unit (ns/op, events/sec, windows/sec, B/op, ...).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads go-bench text and keeps the benchmark result lines.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := splitFields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "goos:":
			doc.Goos = rest(line, "goos:")
			continue
		case "goarch:":
			doc.Goarch = rest(line, "goarch:")
			continue
		case "cpu:":
			doc.CPU = rest(line, "cpu:")
			continue
		}
		b, ok := parseBenchLine(fields)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine decodes "BenchmarkName-N  iters  v1 u1  v2 u2 ...".
func parseBenchLine(fields []string) (Benchmark, bool) {
	name := fields[0]
	if len(name) < len("Benchmark")+1 || name[:len("Benchmark")] != "Benchmark" {
		return Benchmark{}, false
	}
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name = stripProcs(name[len("Benchmark"):])
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripProcs drops the trailing -GOMAXPROCS benchmark-name suffix.
func stripProcs(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}

func splitFields(line string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] != ' ' && line[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, line[start:i])
			start = -1
		}
	}
	return out
}

func rest(line, prefix string) string {
	s := line[len(prefix):]
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}
