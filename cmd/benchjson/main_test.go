package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/ucad/ucad
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeThroughput/workers=1-16  	   30663	      3794 ns/op	    263567 events/sec	     894 B/op	      14 allocs/op
BenchmarkServeThroughputMultiTenant/tenants=4/workers=1         	   28652	      3509 ns/op	    284952 events/sec
BenchmarkTrainEpoch 	       1	 512345678 ns/op	      1234 windows/sec
PASS
ok  	github.com/ucad/ucad	1.149s
some unrelated chatter
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "ServeThroughput/workers=1" || b.Iterations != 30663 {
		t.Fatalf("first: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 3794, "events/sec": 263567, "B/op": 894, "allocs/op": 14,
	} {
		if b.Metrics[unit] != want {
			t.Fatalf("%s = %g, want %g", unit, b.Metrics[unit], want)
		}
	}
	// A sub-benchmark name containing '=' and no -procs suffix survives.
	if doc.Benchmarks[1].Name != "ServeThroughputMultiTenant/tenants=4/workers=1" {
		t.Fatalf("second: %+v", doc.Benchmarks[1])
	}
	if doc.Benchmarks[1].Metrics["events/sec"] != 284952 {
		t.Fatalf("second metrics: %+v", doc.Benchmarks[1].Metrics)
	}
	if doc.Benchmarks[2].Metrics["windows/sec"] != 1234 {
		t.Fatalf("third metrics: %+v", doc.Benchmarks[2].Metrics)
	}
}
