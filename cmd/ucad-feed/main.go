// Command ucad-feed is the streaming front door: it tails a database
// audit log (JSONL or CSV), normalizes and sessionizes the statements,
// and delivers them in batches to a ucad-serve /v1/events endpoint — or,
// with -model instead of -serve-url, scores them in-process against an
// embedded serving pipeline (the single-binary wiring: no HTTP hop, the
// feeder's batches ingest straight into a serve.Service).
//
// Usage:
//
//	ucad-feed -source audit.jsonl -serve-url http://127.0.0.1:8844 \
//	          [-format jsonl] [-tenant default] [-offset-dir DIR] \
//	          [-batch 64] [-flush-interval 200ms] [-poll 50ms] \
//	          [-session-idle 10m] [-metrics-addr :9144]
//	ucad-feed -source audit.jsonl -model ucad.model \
//	          [-score-precision float32] [-score-cache-size 4096] ...
//
// Embedded mode accepts the inference fast-path flags: -score-precision
// selects the scoring kernel (float64 reference or float32 fast path)
// and -score-cache-size memoizes similarity rows for repeated contexts;
// shutdown prints the scored/flagged totals and the cache hit rate.
//
// With -offset-dir the feeder is resumable: after every acknowledged
// batch it atomically commits a checkpoint — the byte offset of the
// tailed file (pinned to its inode, so log rotation in between is
// handled) plus the sessionizer's per-client sequence counters. A
// feeder killed at any instant and restarted on the same offset dir
// re-reads only the uncommitted suffix; replayed events carry the same
// sequence numbers and the server deduplicates them, so every session
// is scored exactly once.
//
// The source file may rotate (rename-and-recreate is followed to the
// last byte, copytruncate restarts at the head) and may not exist yet
// at startup. Backpressure from the server (503) pauses the tail with
// capped exponential backoff — the audit log itself is the buffer, and
// the lag is exported as ucad_feed_lag_bytes when -metrics-addr is set.
//
// -serve-url accepts a comma-separated failover list (primary first,
// then warm standbys). When the acknowledging server changes — the
// primary died and a standby took over — the feeder rewinds the tail by
// at least -failover-rewind and redelivers: the standby deduplicates
// the part it already replayed from the primary's shipped WAL and
// appends the tail the primary never shipped, so sessions stay
// exactly-once across the failover.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/feed"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/transdas"
)

func main() {
	source := flag.String("source", "", "audit log file to tail (required)")
	format := flag.String("format", "jsonl", "audit log format: jsonl or csv")
	serveURL := flag.String("serve-url", "", "ucad-serve base URL(s), comma-separated in failover order, e.g. http://primary:8844,http://standby:8845 (required)")
	failoverRewind := flag.Duration("failover-rewind", 30*time.Second, "replication-lag bound assumed on URL-list failover: redeliver at least this much of the stream to the new server (0 disables the rewind)")
	tenantID := flag.String("tenant", "", "target tenant (sent as the X-UCAD-Tenant header; empty = server default)")
	offsetDir := flag.String("offset-dir", "", "directory for resume checkpoints; empty disables resume")
	batch := flag.Int("batch", 64, "events per delivery batch")
	flush := flag.Duration("flush-interval", 200*time.Millisecond, "deliver a partial batch after this long")
	poll := flag.Duration("poll", 50*time.Millisecond, "file poll period once caught up")
	sessionIdle := flag.Duration("session-idle", 10*time.Minute, "sessionization idle cut-off (match the server's -idle-timeout)")
	metricsAddr := flag.String("metrics-addr", "", "expose feeder /metrics and /healthz here; empty disables")
	modelPath := flag.String("model", "", "embedded mode: score in-process against this trained model instead of delivering to -serve-url")
	workers := flag.Int("workers", 2, "embedded mode: scoring worker-pool size")
	cacheSize := flag.Int("score-cache-size", 4096, "embedded mode: similarity rows memoized (0 disables the score cache)")
	precision := flag.String("score-precision", "float64", "embedded mode: scoring kernel, float64 (reference) or float32 (fast path)")
	flag.Parse()

	if *source == "" || (*serveURL == "") == (*modelPath == "") {
		fmt.Fprintln(os.Stderr, "ucad-feed: -source and exactly one of -serve-url or -model are required")
		flag.Usage()
		os.Exit(2)
	}

	metrics := feed.NewMetrics(nil)
	sourceName := filepath.Base(*source)
	sm := metrics.Source(sourceName)

	tailer, err := feed.NewTailer(feed.TailerConfig{
		Path:    *source,
		Format:  *format,
		Poll:    *poll,
		Metrics: sm,
	})
	fatalIf(err)
	defer tailer.Close()

	ckptPath := ""
	if *offsetDir != "" {
		fatalIf(os.MkdirAll(*offsetDir, 0o755))
		ckptPath = filepath.Join(*offsetDir, checkpointName(sourceName))
	}

	// Delivery target: a remote ucad-serve, or an embedded in-process
	// serving pipeline scoring straight off the tail.
	var deliver feed.Deliverer
	var embedded *serve.Service
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		fatalIf(err)
		u, err := core.Load(f)
		f.Close()
		fatalIf(err)
		prec, err := transdas.ParsePrecision(*precision)
		fatalIf(err)
		u.Model.SetScorePrecision(prec)
		if *cacheSize > 0 {
			u.Model.SetScoreCache(scorecache.New(*cacheSize))
		}
		embedded = serve.NewService(u, serve.Config{
			Workers:     *workers,
			IdleTimeout: *sessionIdle,
		})
		embedded.Start()
		deliver = &feed.ServiceDeliverer{Svc: embedded, Metrics: sm}
	} else {
		var urls []string
		for _, u := range strings.Split(*serveURL, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fatalIf(fmt.Errorf("-serve-url %q contains no URLs", *serveURL))
		}
		deliver = &feed.HTTPDeliverer{
			URL:     urls[0],
			URLs:    urls,
			Tenant:  *tenantID,
			Metrics: sm,
		}
	}

	feeder, err := feed.NewFeeder(feed.FeederConfig{
		Source:         tailer,
		Deliver:        deliver,
		Tenant:         *tenantID,
		CheckpointPath: ckptPath,
		BatchSize:      *batch,
		FlushInterval:  *flush,
		Idle:           *sessionIdle,
		FailoverRewind: *failoverRewind,
		Metrics:        sm,
	})
	fatalIf(err)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Registry.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "ucad-feed: metrics listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resume := "no checkpointing"
	if ckptPath != "" {
		resume = "checkpoints in " + ckptPath
	}
	target := *serveURL
	if embedded != nil {
		target = fmt.Sprintf("embedded %s (%s kernel, score cache %d rows)", *modelPath, *precision, *cacheSize)
	}
	fmt.Printf("feeding %s (%s) -> %s tenant=%q batch=%d (%s)\n",
		*source, *format, target, *tenantID, *batch, resume)

	err = feeder.Run(ctx)
	switch {
	case err == nil || ctx.Err() != nil:
		fmt.Println("ucad-feed: drained, shutting down")
	default:
		fatalIf(err)
	}
	if embedded != nil {
		embedded.Drain()
		st := embedded.Stats()
		fmt.Printf("embedded scoring: %d ops scored, %d mid-session flags, %d alerts; score cache %d hits / %d misses (hit rate %.1f%%)\n",
			st.OpsScored, st.MidSessionFlags, st.AlertsRaised,
			st.ScoreCacheHits, st.ScoreCacheMisses, 100*st.ScoreCacheHitRate)
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := embedded.Close(shctx); err != nil {
			fmt.Fprintln(os.Stderr, "ucad-feed: embedded service close:", err)
		}
		cancel()
	}
}

// checkpointName derives a stable checkpoint filename from the source's
// base name.
func checkpointName(sourceName string) string {
	return sourceName + ".ckpt"
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-feed:", err)
		os.Exit(1)
	}
}
