// Command ucad-feed is the streaming front door: it tails a database
// audit log (JSONL or CSV), normalizes and sessionizes the statements,
// and delivers them in batches to a ucad-serve /v1/events endpoint.
//
// Usage:
//
//	ucad-feed -source audit.jsonl -serve-url http://127.0.0.1:8844 \
//	          [-format jsonl] [-tenant default] [-offset-dir DIR] \
//	          [-batch 64] [-flush-interval 200ms] [-poll 50ms] \
//	          [-session-idle 10m] [-metrics-addr :9144]
//
// With -offset-dir the feeder is resumable: after every acknowledged
// batch it atomically commits a checkpoint — the byte offset of the
// tailed file (pinned to its inode, so log rotation in between is
// handled) plus the sessionizer's per-client sequence counters. A
// feeder killed at any instant and restarted on the same offset dir
// re-reads only the uncommitted suffix; replayed events carry the same
// sequence numbers and the server deduplicates them, so every session
// is scored exactly once.
//
// The source file may rotate (rename-and-recreate is followed to the
// last byte, copytruncate restarts at the head) and may not exist yet
// at startup. Backpressure from the server (503) pauses the tail with
// capped exponential backoff — the audit log itself is the buffer, and
// the lag is exported as ucad_feed_lag_bytes when -metrics-addr is set.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/ucad/ucad/internal/feed"
)

func main() {
	source := flag.String("source", "", "audit log file to tail (required)")
	format := flag.String("format", "jsonl", "audit log format: jsonl or csv")
	serveURL := flag.String("serve-url", "", "ucad-serve base URL, e.g. http://127.0.0.1:8844 (required)")
	tenantID := flag.String("tenant", "", "target tenant (sent as the X-UCAD-Tenant header; empty = server default)")
	offsetDir := flag.String("offset-dir", "", "directory for resume checkpoints; empty disables resume")
	batch := flag.Int("batch", 64, "events per delivery batch")
	flush := flag.Duration("flush-interval", 200*time.Millisecond, "deliver a partial batch after this long")
	poll := flag.Duration("poll", 50*time.Millisecond, "file poll period once caught up")
	sessionIdle := flag.Duration("session-idle", 10*time.Minute, "sessionization idle cut-off (match the server's -idle-timeout)")
	metricsAddr := flag.String("metrics-addr", "", "expose feeder /metrics and /healthz here; empty disables")
	flag.Parse()

	if *source == "" || *serveURL == "" {
		fmt.Fprintln(os.Stderr, "ucad-feed: -source and -serve-url are required")
		flag.Usage()
		os.Exit(2)
	}

	metrics := feed.NewMetrics(nil)
	sourceName := filepath.Base(*source)
	sm := metrics.Source(sourceName)

	tailer, err := feed.NewTailer(feed.TailerConfig{
		Path:    *source,
		Format:  *format,
		Poll:    *poll,
		Metrics: sm,
	})
	fatalIf(err)
	defer tailer.Close()

	ckptPath := ""
	if *offsetDir != "" {
		fatalIf(os.MkdirAll(*offsetDir, 0o755))
		ckptPath = filepath.Join(*offsetDir, checkpointName(sourceName))
	}

	feeder, err := feed.NewFeeder(feed.FeederConfig{
		Source: tailer,
		Deliver: &feed.HTTPDeliverer{
			URL:     strings.TrimRight(*serveURL, "/"),
			Tenant:  *tenantID,
			Metrics: sm,
		},
		Tenant:         *tenantID,
		CheckpointPath: ckptPath,
		BatchSize:      *batch,
		FlushInterval:  *flush,
		Idle:           *sessionIdle,
		Metrics:        sm,
	})
	fatalIf(err)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Registry.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "ucad-feed: metrics listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resume := "no checkpointing"
	if ckptPath != "" {
		resume = "checkpoints in " + ckptPath
	}
	fmt.Printf("feeding %s (%s) -> %s tenant=%q batch=%d (%s)\n",
		*source, *format, *serveURL, *tenantID, *batch, resume)

	err = feeder.Run(ctx)
	switch {
	case err == nil || ctx.Err() != nil:
		fmt.Println("ucad-feed: drained, shutting down")
	default:
		fatalIf(err)
	}
}

// checkpointName derives a stable checkpoint filename from the source's
// base name.
func checkpointName(sourceName string) string {
	return sourceName + ".ckpt"
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-feed:", err)
		os.Exit(1)
	}
}
