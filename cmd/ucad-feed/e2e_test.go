package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/minidb"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// The end-to-end test re-executes this test binary as the real
// ucad-feed process, so the parent can kill -9 a genuine OS process
// mid-stream and watch a genuine restart resume from the offset
// checkpoint.
const (
	childEnv     = "UCAD_FEED_E2E_CHILD"
	childArgsEnv = "UCAD_FEED_E2E_ARGS"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Args = append([]string{os.Args[0]}, strings.Split(os.Getenv(childArgsEnv), "\n")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// appStatements is the application workload, phrased in SQL the minidb
// engine actually executes. Literals vary per call and normalize away.
var appStatements = []func(i int) string{
	func(i int) string { return fmt.Sprintf("SELECT * FROM videos WHERE vid = %d", i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM users WHERE uid = %d", i) },
	func(i int) string { return fmt.Sprintf("INSERT INTO stats (vid, views) VALUES (%d, %d)", i, i+1) },
	func(i int) string { return fmt.Sprintf("UPDATE stats SET views = %d WHERE vid = %d", i+2, i) },
	func(i int) string { return fmt.Sprintf("SELECT views FROM stats WHERE vid = %d", i) },
	func(i int) string { return fmt.Sprintf("DELETE FROM stats WHERE views < %d", i) },
}

// anomalySQL reads a confidential table no training session ever
// touched: valid SQL for the engine, out-of-vocabulary for the model.
const anomalySQL = "SELECT * FROM credit_cards WHERE uid = 7"

func appStatement(pos int) string {
	return appStatements[pos%len(appStatements)](pos)
}

// trainApp fits the deterministic test detector: TopP = Vocab-1 means
// every in-vocabulary statement passes and only OOV statements flag.
func trainApp(t *testing.T) *core.UCAD {
	t.Helper()
	var sessions []*session.Session
	for i := 0; i < 16; i++ {
		s := &session.Session{ID: fmt.Sprintf("train-%d", i), User: "app"}
		for p := 0; p < 12; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: appStatement(i + p)})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 2
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	cfg.Model.TopP = len(appStatements)
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Vocab.Size() != len(appStatements)+1 {
		t.Fatalf("vocab size %d, want %d", u.Vocab.Size(), len(appStatements)+1)
	}
	return u
}

// fakeClock drives the server's idle close-out deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// child is one ucad-feed process run from the test binary.
type child struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	mu  sync.Mutex
}

func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	c := &child{cmd: exec.Command(os.Args[0]), out: &bytes.Buffer{}}
	c.cmd.Env = append(os.Environ(), childEnv+"=1", childArgsEnv+"="+strings.Join(args, "\n"))
	c.cmd.Stdout = lockedWriter{c}
	c.cmd.Stderr = lockedWriter{c}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

type lockedWriter struct{ c *child }

func (w lockedWriter) Write(p []byte) (int, error) {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.out.Write(p)
}

func (c *child) log() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.String()
}

func (c *child) kill9(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()
}

// TestFeedE2EKillResume drives the full front door with real processes:
// statements execute against the minidb engine, its durable audit
// writer appends JSONL, a real ucad-feed process tails the file into a
// live serving endpoint, gets kill -9'd mid-stream, restarts from its
// offset checkpoint, and every session comes out scored exactly once —
// including the anomalous one, which must raise an alert.
func TestFeedE2EKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e")
	}
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	offsetDir := filepath.Join(dir, "offsets")

	// Database with its schema set up BEFORE the audit writer attaches,
	// so DDL from provisioning never reaches the detector.
	db := minidb.NewDB()
	admin := db.Connect("admin", "127.0.0.1", "setup")
	for _, ddl := range []string{
		"CREATE TABLE videos (vid INT, title TEXT)",
		"CREATE TABLE users (uid INT, name TEXT)",
		"CREATE TABLE stats (vid INT, views INT)",
		"CREATE TABLE credit_cards (uid INT, pan TEXT)",
		"INSERT INTO videos (vid, title) VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO users (uid, name) VALUES (1, 'u1'), (7, 'u7')",
		"INSERT INTO credit_cards (uid, pan) VALUES (7, '4111')",
	} {
		if _, err := admin.Exec(ddl); err != nil {
			t.Fatalf("setup %q: %v", ddl, err)
		}
	}
	aw, err := minidb.NewAuditWriter(auditPath, wal.SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer aw.Close()
	db.SetAuditSink(aw)

	// Live serving endpoint on a real listener.
	clk := &fakeClock{now: time.Now()}
	scfg := serve.DefaultConfig()
	scfg.Workers = 2
	scfg.SweepEvery = 0
	scfg.Clock = clk.Now
	svc := serve.NewService(trainApp(t), scfg)
	defer svc.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	feedArgs := []string{
		"-source", auditPath,
		"-serve-url", base,
		"-offset-dir", offsetDir,
		"-batch", "4",
		"-flush-interval", "20ms",
		"-poll", "5ms",
		"-session-idle", "10m",
	}
	feeder := startChild(t, feedArgs...)

	waitStats := func(what string, cond func(serve.Stats) bool) serve.Stats {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := svc.Stats()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: stats %+v\nfeeder log:\n%s", what, st, feeder.log())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 1: three clients issue half their traffic.
	const clients, phase1Ops, phase2Ops = 3, 6, 6
	conns := make([]*minidb.Conn, clients)
	for c := range conns {
		conns[c] = db.Connect("app", fmt.Sprintf("10.0.0.%d", c+1), fmt.Sprintf("conn-%d", c))
	}
	total := 0
	for p := 0; p < phase1Ops; p++ {
		for c, conn := range conns {
			if _, err := conn.Exec(appStatement(c + p)); err != nil {
				t.Fatalf("phase 1 exec: %v", err)
			}
			total++
		}
	}
	waitStats("phase 1 ingest", func(st serve.Stats) bool {
		return st.EventsAccepted >= int64(total-4) // most of it delivered
	})

	// kill -9 mid-stream: whatever was delivered but not checkpointed
	// will be replayed by the restart.
	feeder.kill9(t)
	if _, err := os.Stat(filepath.Join(offsetDir, filepath.Base(auditPath)+".ckpt")); err != nil {
		t.Fatalf("no offset checkpoint on disk after kill: %v", err)
	}

	// Phase 2: traffic continues while the feeder is down; client 1
	// slips in the confidential-table read.
	for p := 0; p < phase2Ops; p++ {
		for c, conn := range conns {
			sql := appStatement(c + phase1Ops + p)
			if c == 1 && p == 3 {
				sql = anomalySQL
			}
			if _, err := conn.Exec(sql); err != nil {
				t.Fatalf("phase 2 exec: %v", err)
			}
			total++
		}
	}

	// Restart: resumes from the checkpoint, replays the uncommitted
	// suffix (deduplicated server-side), then catches up.
	feeder = startChild(t, feedArgs...)
	defer feeder.kill9(t)
	st := waitStats("catch-up after restart", func(st serve.Stats) bool {
		return st.EventsAccepted >= int64(total)
	})
	if st.EventsAccepted != int64(total) {
		t.Fatalf("EventsAccepted = %d, want exactly %d (lost or duplicated operations)", st.EventsAccepted, total)
	}
	// Let any straggling redeliveries land, then re-check nothing
	// double-counted.
	time.Sleep(200 * time.Millisecond)
	st = svc.Stats()
	if st.EventsAccepted != int64(total) {
		t.Fatalf("EventsAccepted drifted to %d after catch-up, want %d", st.EventsAccepted, total)
	}
	if st.SessionsOpen != clients {
		t.Fatalf("SessionsOpen = %d, want %d", st.SessionsOpen, clients)
	}
	if st.UnknownKeys != 1 {
		t.Fatalf("UnknownKeys = %d, want 1 (the confidential read)", st.UnknownKeys)
	}

	// Close out every session and check each was scored exactly once.
	svc.Drain()
	clk.Advance(time.Hour)
	svc.CloseIdleNow()
	svc.Drain()
	st = svc.Stats()
	if st.SessionsProcessed != clients {
		t.Fatalf("SessionsProcessed = %d, want %d (zero duplicate or lost sessions)", st.SessionsProcessed, clients)
	}
	if st.SessionsFlagged != 1 {
		t.Fatalf("SessionsFlagged = %d, want 1", st.SessionsFlagged)
	}
	alerts := svc.Alerts("open")
	if len(alerts) == 0 {
		t.Fatalf("no alert for the anomalous session; stats %+v\nfeeder log:\n%s", st, feeder.log())
	}
	found := false
	for _, a := range alerts {
		for _, stmt := range a.Statements {
			if stmt == anomalySQL {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("alert does not contain the anomalous statement: %+v", alerts)
	}
}
