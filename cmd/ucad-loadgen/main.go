// Command ucad-loadgen is the sustained-load harness: it drives
// fixed-rate multi-tenant MultiGen traffic — the same interleaved
// scenario/session shapes the experiments use — for a set duration and
// reports throughput, ingest latency quantiles, allocation cost, and
// (when watching a standby) replication lag.
//
// Usage:
//
//	ucad-loadgen -rate 2000 -duration 30s [-tenants 2] [-anomaly 0.05]
//	ucad-loadgen -rate 2000 -duration 30s -serve-url http://primary:8844,http://standby:8845 \
//	             [-tenant-ids s1,s2] [-replication-status http://standby:8845]
//
// Without -serve-url the harness is self-contained: it trains one tiny
// scenario model per tenant at startup and ingests straight into an
// in-process serving registry, measuring per-event ingest admission
// latency. With -serve-url it posts event batches over HTTP (the URL
// list fails over exactly like ucad-feed) and measures per-batch
// delivery latency; -tenant-ids must then name tenants the server
// already runs (empty targets the server's default tenant).
//
// The summary line is `go test -bench` shaped, so piping stdout through
// cmd/benchjson folds the run into the same BENCH_*.json artifact the
// micro-benchmarks produce:
//
//	ucad-loadgen -rate 1500 -duration 15s | benchjson -o BENCH_LOAD.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/feed"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/tenant"
	"github.com/ucad/ucad/internal/workload"
)

func main() {
	rate := flag.Float64("rate", 2000, "sustained event rate (events/sec)")
	duration := flag.Duration("duration", 30*time.Second, "how long to hold the rate")
	tenants := flag.Int("tenants", 2, "in-process mode: tenant count (tiny models trained at startup)")
	anomaly := flag.Float64("anomaly", 0.05, "per-session probability of an attack synthesis")
	seed := flag.Int64("seed", 42, "workload seed (deterministic traffic for a fixed seed)")
	serveURL := flag.String("serve-url", "", "deliver over HTTP to these comma-separated base URLs (failover order) instead of in-process")
	tenantIDs := flag.String("tenant-ids", "", "HTTP mode: comma-separated tenant ids to address (empty = the server's default tenant)")
	batch := flag.Int("batch", 64, "HTTP mode: events per POST")
	workers := flag.Int("workers", 4, "in-process mode: scoring workers per tenant")
	shards := flag.Int("shards", 2, "in-process mode: ingest shards per tenant")
	lagURL := flag.String("replication-status", "", "poll this server's /v1/replication during the run and report standby lag")
	name := flag.String("name", "LoadSustained", "benchmark name for the summary line")
	flag.Parse()

	if *rate <= 0 || *duration <= 0 {
		fatalIf(fmt.Errorf("-rate and -duration must be positive"))
	}

	gen, ids := buildTraffic(*serveURL, *tenantIDs, *tenants, *seed, *anomaly)
	sink := buildSink(*serveURL, ids, *workers, *shards, *batch)
	defer sink.close()

	reg := obs.NewRegistry()
	hist := reg.Histogram("ucad_loadgen_latency_seconds", "Ingest admission / batch delivery latency.", obs.LatencyBuckets)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var lag *lagWatcher
	if *lagURL != "" {
		lag = watchLag(ctx, strings.TrimRight(*lagURL, "/"))
	}

	fmt.Fprintf(os.Stderr, "ucad-loadgen: %s at %.0f ev/s for %s (%s)\n",
		sink.describe(), *rate, *duration, describeTenants(ids))

	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	start := time.Now()
	sent, err := drive(ctx, gen, sink, hist, *rate, *duration)
	elapsed := time.Since(start)
	fatalIf(err)
	sink.drain()

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	if sent == 0 {
		fatalIf(fmt.Errorf("no events sent (interrupted immediately?)"))
	}
	evps := float64(sent) / elapsed.Seconds()
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(sent)
	allocsPerEvent := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(sent)
	bytesPerEvent := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(sent)

	// The go-bench-shaped summary line cmd/benchjson folds into the
	// BENCH_*.json artifact. Latency quantiles are admission latency per
	// event in-process and delivery latency per batch over HTTP.
	line := fmt.Sprintf("Benchmark%s \t%8d\t%12.0f ns/op\t%12.0f events/sec\t%10.4f p50-ms\t%10.4f p99-ms\t%8.1f allocs/event\t%8.0f B/event",
		*name, sent, nsPerOp, evps,
		hist.Quantile(0.50)*1e3, hist.Quantile(0.99)*1e3,
		allocsPerEvent, bytesPerEvent)
	if lag != nil {
		maxLag, lastLag, samples := lag.summary()
		if samples > 0 {
			line += fmt.Sprintf("\t%10.3f replication-lag-max-s\t%10.3f replication-lag-final-s", maxLag, lastLag)
		}
	}
	fmt.Println(line)
	fmt.Fprintf(os.Stderr, "ucad-loadgen: %d events in %s (%.0f ev/s achieved, target %.0f)\n",
		sent, elapsed.Round(time.Millisecond), evps, *rate)
	sink.report()
}

// drive paces gen into sink at the target rate until the duration (or
// the context) expires, observing per-delivery latency into hist.
func drive(ctx context.Context, gen *workload.MultiGen, sink eventSink, hist *obs.Histogram, rate float64, duration time.Duration) (int64, error) {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	start := time.Now()
	var sent int64
	for {
		select {
		case <-ctx.Done():
			return sent, nil
		case <-tick.C:
		}
		elapsed := time.Since(start)
		if elapsed >= duration {
			return sent, nil
		}
		// Token bucket: emit whatever the elapsed-time budget has accrued
		// beyond what was already sent, so a slow flush is caught up on
		// the next tick instead of silently lowering the rate.
		target := int64(rate * elapsed.Seconds())
		for sent < target {
			if err := sink.send(ctx, gen.Next(), hist); err != nil {
				return sent, err
			}
			sent++
			if ctx.Err() != nil {
				return sent, nil
			}
		}
	}
}

// buildTraffic assembles the MultiGen stream: alternating Scenario-I /
// Scenario-II sources, one per tenant id.
func buildTraffic(serveURL, tenantIDs string, tenants int, seed int64, anomaly float64) (*workload.MultiGen, []string) {
	var ids []string
	if serveURL != "" {
		for _, id := range strings.Split(tenantIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			ids = []string{""} // the server's default tenant
		}
	} else {
		if tenants <= 0 {
			tenants = 1
		}
		for i := 0; i < tenants; i++ {
			ids = append(ids, fmt.Sprintf("gen-%d", i))
		}
	}
	streams := make([]workload.TenantStream, len(ids))
	for i, id := range ids {
		spec := workload.ScenarioI()
		if i%2 == 1 {
			spec = workload.ScenarioII(0.5)
		}
		streams[i] = workload.TenantStream{
			Tenant:      id,
			Source:      workload.NewScenarioSource(spec, seed+int64(i), anomaly),
			Concurrency: 4,
		}
	}
	return workload.NewMultiGen(seed, streams...), ids
}

func describeTenants(ids []string) string {
	if len(ids) == 1 && ids[0] == "" {
		return "default tenant"
	}
	return fmt.Sprintf("%d tenants: %s", len(ids), strings.Join(ids, ","))
}

// eventSink abstracts the two delivery paths.
type eventSink interface {
	send(ctx context.Context, ev workload.TenantEvent, hist *obs.Histogram) error
	drain()
	report()
	describe() string
	close()
}

func buildSink(serveURL string, ids []string, workers, shards, batch int) eventSink {
	if serveURL == "" {
		return newLocalSink(ids, workers, shards)
	}
	var urls []string
	for _, u := range strings.Split(serveURL, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fatalIf(fmt.Errorf("-serve-url %q contains no URLs", serveURL))
	}
	return &httpSink{
		deliver:  &feed.HTTPDeliverer{URL: urls[0], URLs: urls},
		capacity: batch,
		urls:     urls,
	}
}

// localSink scores in-process: a non-durable tenant registry with one
// tiny scenario-trained model per tenant. send measures ingest
// admission latency per event, retrying ErrBusy backpressure.
type localSink struct {
	reg *tenant.Registry
}

func newLocalSink(ids []string, workers, shards int) *localSink {
	reg := tenant.New(tenant.Options{
		Serve: serve.Config{
			Workers:     workers,
			Shards:      shards,
			QueueSize:   4096,
			Batch:       16,
			IdleTimeout: 10 * time.Minute,
			SweepEvery:  15 * time.Second,
		},
	})
	for i, id := range ids {
		spec := workload.ScenarioI()
		if i%2 == 1 {
			spec = workload.ScenarioII(0.5)
		}
		fmt.Fprintf(os.Stderr, "ucad-loadgen: training tiny model for %s...\n", id)
		u := trainTiny(spec, int64(1000+i))
		_, err := reg.CreateFromModel(tenant.Spec{ID: id}, u)
		fatalIf(err)
	}
	return &localSink{reg: reg}
}

// trainTiny fits a small detector to 12 sessions of the spec — enough
// vocabulary for scoring to be real work, small enough to train in
// well under a second.
func trainTiny(spec workload.Spec, seed int64) *core.UCAD {
	src := workload.NewScenarioSource(spec, seed, 0)
	var sessions []*session.Session
	for i := 0; i < 12; i++ {
		ss := src.NextSession()
		s := &session.Session{ID: ss.ClientID, User: ss.User, Addr: ss.Addr}
		for _, sql := range ss.Statements {
			s.Ops = append(s.Ops, session.Operation{SQL: sql})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 8
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 1
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	u, err := core.Train(cfg, sessions, nil)
	fatalIf(err)
	u.Model.SetScoreCache(scorecache.New(4096))
	return u
}

func (s *localSink) send(ctx context.Context, ev workload.TenantEvent, hist *obs.Histogram) error {
	e := serve.Event{
		Tenant:   ev.Tenant,
		ClientID: ev.ClientID,
		User:     ev.User,
		Addr:     ev.Addr,
		SQL:      ev.SQL,
	}
	for backoff := time.Millisecond; ; backoff *= 2 {
		t0 := time.Now()
		err := s.reg.Ingest(e)
		if err == nil {
			hist.Observe(time.Since(t0).Seconds())
			return nil
		}
		if !errors.Is(err, serve.ErrBusy) {
			return fmt.Errorf("ingest: %w", err)
		}
		if backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
	}
}

func (s *localSink) drain() {
	for _, t := range s.reg.List() {
		t.Service().Drain()
	}
}

func (s *localSink) report() {
	for _, t := range s.reg.List() {
		st := t.Stats()
		fmt.Fprintf(os.Stderr, "ucad-loadgen: tenant %s: %d accepted, %d scored, %d flagged sessions, %d alerts; score cache hit rate %.1f%%\n",
			t.ID(), st.EventsAccepted, st.OpsScored, st.SessionsFlagged, st.AlertsRaised, 100*st.ScoreCacheHitRate)
	}
}

func (s *localSink) describe() string { return "in-process serving registry" }

func (s *localSink) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.reg.Close(ctx)
}

// httpSink batches events into /v1/events posts through the failover
// deliverer. Sessionization is the server's job in this path, so events
// carry no sequence numbers and latency is observed per batch.
type httpSink struct {
	deliver  *feed.HTTPDeliverer
	capacity int
	urls     []string
	buf      []serve.Event
	batches  int64
}

func (s *httpSink) send(ctx context.Context, ev workload.TenantEvent, hist *obs.Histogram) error {
	s.buf = append(s.buf, serve.Event{
		Tenant:   ev.Tenant,
		ClientID: ev.ClientID,
		User:     ev.User,
		Addr:     ev.Addr,
		SQL:      ev.SQL,
	})
	if len(s.buf) < s.capacity {
		return nil
	}
	return s.flush(ctx, hist)
}

func (s *httpSink) flush(ctx context.Context, hist *obs.Histogram) error {
	if len(s.buf) == 0 {
		return nil
	}
	t0 := time.Now()
	err := s.deliver.Deliver(ctx, s.buf)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("deliver: %w", err)
	}
	hist.Observe(time.Since(t0).Seconds())
	s.buf = s.buf[:0]
	s.batches++
	return nil
}

func (s *httpSink) drain() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.flush(ctx, obsNull()); err != nil {
		fmt.Fprintln(os.Stderr, "ucad-loadgen: final flush:", err)
	}
}

// obsNull is a throwaway histogram for the final flush (not part of the
// measured window).
func obsNull() *obs.Histogram {
	return obs.NewRegistry().Histogram("ucad_loadgen_scratch_seconds", "scratch", obs.LatencyBuckets)
}

func (s *httpSink) report() {
	fmt.Fprintf(os.Stderr, "ucad-loadgen: %d batches posted; %d failover(s)\n", s.batches, s.deliver.Failovers())
}

func (s *httpSink) describe() string {
	return fmt.Sprintf("HTTP delivery to %s", strings.Join(s.urls, " -> "))
}

func (s *httpSink) close() {}

// lagWatcher polls a standby's /v1/replication during the run.
type lagWatcher struct {
	mu      sync.Mutex
	max     float64
	last    float64
	samples int64
}

func watchLag(ctx context.Context, base string) *lagWatcher {
	w := &lagWatcher{}
	client := &http.Client{Timeout: 2 * time.Second}
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			resp, err := client.Get(base + "/v1/replication")
			if err != nil {
				continue
			}
			var st struct {
				LagSeconds float64 `json:"lag_seconds"`
			}
			err = decodeJSON(resp, &st)
			if err != nil {
				continue
			}
			w.mu.Lock()
			w.last = st.LagSeconds
			if st.LagSeconds > w.max {
				w.max = st.LagSeconds
			}
			w.samples++
			w.mu.Unlock()
		}
	}()
	return w
}

func (w *lagWatcher) summary() (maxLag, lastLag float64, samples int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max, w.last, w.samples
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-loadgen:", err)
		os.Exit(1)
	}
}
