// Command ucad-serve runs the online detection loop of §5.2–§5.3 as an
// HTTP service: database frontends stream raw statement events in,
// sessions assemble per client, every operation is scored incrementally
// against a trained model, and flagged operations surface as alerts
// while the session is still active.
//
// Usage:
//
//	ucad-serve -model ucad.model [-addr :8844] [-workers 4] [-shards N] [-data-dir DIR] [-fsync always] [-pprof]
//	ucad-serve -tenants tenants.json -data-dir DIR [-addr :8844] ...
//	ucad-serve -data-dir DIR -replicate-from http://primary:8844 [-auto-promote-after 30s]
//
// Without -tenants the process serves one default tenant from -model —
// the original single-tenant deployment, byte-for-byte compatible
// including the legacy <data-dir>/wal + <data-dir>/checkpoints layout.
// With -tenants the process multiplexes one pipeline per tenant: the
// file is a JSON array of specs like
//
//	[{"id": "scenario1", "model": "s1.model"},
//	 {"id": "syslog",    "model": "logs.model"}]
//
// and each tenant gets its own model, WAL, snapshots, and checkpoint
// manifest under <data-dir>/tenants/<id>/. Tenants created later
// through the admin API persist there too and come back on restart.
//
// Ingestion is sharded: sessions partition across -shards assembler
// shards by client hash, each shard owning its own session map, WAL
// stream, and scoring queue. Restarting with a different -shards value
// is safe — restore remaps the persisted state to the new layout.
//
// With -data-dir the service is crash-safe: every accepted event is
// appended to the owning tenant's write-ahead log before it is
// acknowledged, open sessions are snapshotted on -snapshot-interval,
// and a restart on the same directory restores every tenant
// independently (load newest snapshot + replay the WAL suffix,
// truncating a torn tail). Fine-tune rounds additionally write atomic
// model checkpoints; boot prefers the newest checkpoint that loads,
// rolling back through the manifest past any that do not.
//
// With -data-dir the process is also a replication primary: sealed WAL
// segments, snapshots, model checkpoints and tenant specs are served
// read-only under /v1/replica/ (the single-tenant flat layout ships as
// tenant "default"). A second process
// started with -replicate-from pointed at it runs as a warm standby:
// it mirrors every tenant into its own -data-dir, continuously replays
// the shipped stream into live non-serving pipelines, and flips to
// serving on POST /v1/promote (or on its own after -auto-promote-after
// of primary unreachability). GET /v1/replication reports standby lag.
//
// API:
//
//	POST   /v1/events              {"client_id":"c1","user":"u","sql":"SELECT ..."} or a JSON array;
//	                               routed by a "tenant" field, X-UCAD-Tenant header, or ?tenant=
//	GET    /v1/alerts?status=open  flagged sessions awaiting expert review (?tenant= selects)
//	POST   /v1/alerts/{id}/resolve {"verdict":"false_alarm"|"confirmed"}
//	GET    /v1/tenants             tenant list; POST creates, DELETE /v1/tenants/{id} removes
//	PUT    /v1/tenants/{id}/model  hot-swap the tenant's model (body: a ucad train model file)
//	GET    /v1/tenants/{id}/stats  per-tenant counters (also .../alerts, .../drain)
//	GET    /healthz                liveness
//	GET    /stats                  serving counters (JSON; ?tenant= selects)
//	GET    /metrics                Prometheus text exposition, every family labelled by tenant
//	GET    /debug/pprof/           Go profiling endpoints (only with -pprof)
//
// Train a model first with `ucad train` (see cmd/ucad).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"path/filepath"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/replica"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/tenant"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/wal"
)

func main() {
	modelPath := flag.String("model", "ucad.model", "trained model file (ucad train); the default for tenants without one")
	tenantsFile := flag.String("tenants", "", "JSON tenant specs ([{\"id\":...,\"model\":...}]); empty serves a single default tenant")
	addr := flag.String("addr", ":8844", "HTTP listen address")
	workers := flag.Int("workers", 4, "scoring worker-pool size per tenant")
	shards := flag.Int("shards", 0, "ingest shards per tenant (sessions partitioned by client hash; <=0 uses all CPUs)")
	queue := flag.Int("queue", 1024, "scoring queue capacity per tenant (backpressure bound)")
	batch := flag.Int("batch", 16, "scoring micro-batch size per worker pass")
	idle := flag.Duration("idle-timeout", 10*time.Minute, "close a client session after this inactivity")
	sweep := flag.Duration("sweep-every", 15*time.Second, "idle close-out sweep period")
	retrainAfter := flag.Int("retrain-after", 0, "fine-tune a tenant when its verified pool reaches this many sessions (0 disables)")
	retrainEpochs := flag.Int("retrain-epochs", 2, "epochs per fine-tune round")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel workers per fine-tune round (<=0 uses all CPUs)")
	batchSize := flag.Int("batch-size", 16, "windows per SGD step during fine-tune (gradients summed across the mini-batch)")
	maxResolved := flag.Int("max-resolved-alerts", 4096, "resolved alerts retained in memory per tenant (negative = unbounded)")
	resolvedTTL := flag.Duration("resolved-alert-ttl", 24*time.Hour, "evict resolved alerts after this age (negative disables)")
	dataDir := flag.String("data-dir", "", "durability root (per-tenant WAL + snapshots + checkpoints); empty disables durability")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (durable per event), interval, never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL flush period under -fsync=interval")
	snapshotEvery := flag.Duration("snapshot-interval", time.Minute, "open-session snapshot/compaction period (0 disables the loop)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation cap in bytes")
	shutdownWait := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget on SIGTERM/SIGINT")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/")
	cacheSize := flag.Int("score-cache-size", 4096, "similarity rows memoized per tenant (0 disables the score cache)")
	precision := flag.String("score-precision", "float64", "scoring kernel: float64 (reference) or float32 (fast path, scores within 1e-4)")
	replicateFrom := flag.String("replicate-from", "", "primary base URL to follow as a warm standby (requires -data-dir; tenants mirror from the primary and serve after POST /v1/promote)")
	replicaPoll := flag.Duration("replica-poll", 2*time.Second, "standby sync period under -replicate-from")
	autoPromote := flag.Duration("auto-promote-after", 0, "standby self-promotes after the primary has been unreachable this long (0 = manual promotion only)")
	warmCache := flag.Bool("warm-score-cache", true, "pre-warm each replica tenant's score cache while replaying shipped WAL (standby mode)")
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsync)
	fatalIf(err)
	prec, err := transdas.ParsePrecision(*precision)
	fatalIf(err)

	// Resolve the boot-time tenant set. Single-tenant mode pins the
	// default tenant to the legacy flat layout via the Dir override, so a
	// pre-multi-tenant data directory restores unchanged.
	var specs []tenant.Spec
	if *tenantsFile == "" {
		specs = []tenant.Spec{{ModelPath: *modelPath, Dir: *dataDir}}
	} else {
		b, err := os.ReadFile(*tenantsFile)
		fatalIf(err)
		fatalIf(json.Unmarshal(b, &specs))
		if len(specs) == 0 {
			fatalIf(fmt.Errorf("%s: no tenant specs", *tenantsFile))
		}
		for i := range specs {
			if specs[i].ModelPath == "" {
				specs[i].ModelPath = *modelPath
			}
		}
	}

	if *replicateFrom != "" && *dataDir == "" {
		fatalIf(fmt.Errorf("-replicate-from requires -data-dir (the standby persists the mirrored WAL)"))
	}

	var follower *replica.Follower
	opts := tenant.Options{
		Root: *dataDir,
		// Promotion seals the replication era before flipping replicas
		// live: stop the follower loop, then pull one final sync so the
		// standby holds everything the primary had sealed. Runs outside
		// the registry's admin lock (a mid-flight sync may be creating a
		// replica tenant, which needs that lock).
		PrePromote: func() {
			if follower != nil {
				follower.Stop()
				follower.SyncOnce(context.Background())
			}
		},
		Serve: serve.Config{
			Workers:           *workers,
			Shards:            *shards,
			QueueSize:         *queue,
			Batch:             *batch,
			IdleTimeout:       *idle,
			SweepEvery:        *sweep,
			RetrainAfter:      *retrainAfter,
			RetrainEpochs:     *retrainEpochs,
			MaxResolvedAlerts: *maxResolved,
			ResolvedAlertTTL:  *resolvedTTL,
		},
		Durability: serve.DurabilityConfig{
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segmentBytes,
			SnapshotEvery: *snapshotEvery,
		},
		// The persisted config keeps whatever parallelism a model was
		// trained with; the serving flags decide what fine-tune rounds use
		// on this host. The same hook arms the inference fast path on
		// every loaded model (boot, create, hot swap): scoring precision
		// and a fresh score cache — detect.Online carries the running
		// tenant's cache (and its counters) onto a hot-swapped model in
		// place of the fresh one.
		Tune: func(u *core.UCAD) {
			u.Model.SetTrainParallelism(*trainWorkers, *batchSize)
			u.Model.SetScorePrecision(prec)
			if *cacheSize > 0 {
				u.Model.SetScoreCache(scorecache.New(*cacheSize))
			}
		},
	}
	reg := tenant.New(opts)
	fmt.Printf("scoring: %s kernel, score cache %d rows per tenant\n", prec, *cacheSize)
	if *replicateFrom == "" {
		fatalIf(reg.Boot(specs))
		for _, t := range reg.List() {
			fmt.Printf("tenant %s: model loaded from %s\n", t.ID(), t.ModelSource())
			if t.Dir() == "" {
				continue
			}
			rst := t.RestoreStats()
			how := "clean shutdown"
			switch {
			case rst.CleanSeal:
			case rst.Records == 0 && rst.SnapshotSeq == 0 && rst.Sessions == 0:
				how = "fresh data dir"
			default:
				how = "crash recovery"
			}
			fmt.Printf("tenant %s: restored %d open sessions (%s; %d WAL records replayed, fsync=%s)\n",
				t.ID(), rst.Sessions, how, rst.Records, *fsync)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	// One shared replication metrics family: a standby is both a
	// follower and (post-promotion) a shippable primary, and the obs
	// registry rejects double registration.
	var replMetrics *replica.Metrics
	if *dataDir != "" {
		replMetrics = replica.NewMetrics(reg.Hub().Registry)
		// Primary side of replication: expose the sealed WAL, snapshots,
		// checkpoints and specs of every tenant. Single-tenant mode keeps
		// the default tenant in the legacy flat layout at the data-dir
		// root; a Flat alias lets standbys replicate it all the same.
		shipper := &replica.Shipper{
			Root:    filepath.Join(*dataDir, "tenants"),
			Metrics: replMetrics,
		}
		if *tenantsFile == "" && *replicateFrom == "" {
			shipper.Flat = map[string]string{"default": *dataDir}
		}
		mux.Handle("/v1/replica/", shipper.Handler("/v1/replica"))
	}
	if *replicateFrom != "" {
		f, err := replica.NewFollower(replica.FollowerConfig{
			PrimaryURL:       *replicateFrom,
			Root:             *dataDir,
			Interval:         *replicaPoll,
			WarmScoreCache:   *warmCache,
			AutoPromoteAfter: *autoPromote,
			Metrics:          replMetrics,
			OpenTarget: func(id, dir string) (replica.Target, error) {
				tn, err := reg.CreateReplica(id)
				if err != nil {
					return nil, err
				}
				fmt.Printf("tenant %s: replicating from %s\n", id, *replicateFrom)
				return replica.ServiceTarget{Svc: tn.Service()}, nil
			},
			OnPrimaryDown: func() {
				fmt.Printf("primary unreachable for %s: promoting standby\n", *autoPromote)
				promoted, err := reg.Promote()
				if err != nil {
					fmt.Fprintln(os.Stderr, "ucad-serve: auto-promote:", err)
					return
				}
				fmt.Printf("promoted tenants: %v\n", promoted)
			},
		})
		fatalIf(err)
		follower = f
		go follower.Run(context.Background())
		defer follower.Stop()
		mux.HandleFunc("GET /v1/replication", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(follower.Status())
		})
		fmt.Printf("warm standby: following %s every %s (promote via POST /v1/promote)\n", *replicateFrom, *replicaPoll)
	}
	if *pprofOn {
		// Explicit registration keeps the profiling surface off unless
		// asked for — no blanket net/http/pprof DefaultServeMux import.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving %d tenant(s) on %s with %d workers each (queue %d, idle timeout %s)\n",
		len(reg.List()), *addr, *workers, *queue, *idle)
	fmt.Printf("observability: GET /metrics (Prometheus text, tenant-labelled)")
	if *pprofOn {
		fmt.Printf(", GET /debug/pprof/")
	}
	fmt.Println()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%s: draining...\n", sig)
	case err := <-errc:
		fatalIf(err)
	}

	// Quiesce ingestion first, then shut every tenant down gracefully:
	// durable tenants drain their queues, snapshot their open sessions
	// (they come back on the next boot) and seal their logs; non-durable
	// ones flush open sessions through close-out detection instead.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	srv.Shutdown(ctx)
	if err := reg.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ucad-serve: shutdown:", err)
	}
	for _, t := range reg.List() {
		st := t.Stats()
		fmt.Printf("tenant %s done: %d events, %d sessions closed, %d open preserved, %d flagged, %d alerts open\n",
			t.ID(), st.EventsAccepted, st.SessionsClosed, st.SessionsOpen, st.SessionsFlagged, st.AlertsOpen)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-serve:", err)
		os.Exit(1)
	}
}
