// Command ucad-serve runs the online detection loop of §5.2–§5.3 as an
// HTTP service: database frontends stream raw statement events in,
// sessions assemble per client, every operation is scored incrementally
// against a trained model, and flagged operations surface as alerts
// while the session is still active.
//
// Usage:
//
//	ucad-serve -model ucad.model [-addr :8844] [-workers 4] [-data-dir DIR] [-fsync always] [-pprof]
//
// With -data-dir the service is crash-safe: every accepted event is
// appended to a write-ahead log before it is acknowledged, open
// sessions are snapshotted on -snapshot-interval, and a restart on the
// same directory restores them (load newest snapshot + replay the WAL
// suffix, truncating a torn tail). Fine-tune rounds additionally write
// atomic model checkpoints under <data-dir>/checkpoints; boot prefers
// the newest checkpoint that loads, rolling back through the manifest
// past any that do not.
//
// API:
//
//	POST /v1/events              {"client_id":"c1","user":"u","sql":"SELECT ..."} or a JSON array
//	GET  /v1/alerts?status=open  flagged sessions awaiting expert review
//	POST /v1/alerts/{id}/resolve {"verdict":"false_alarm"|"confirmed"}
//	GET  /healthz                liveness
//	GET  /stats                  serving counters (JSON)
//	GET  /metrics                Prometheus text exposition (latency histograms, counters, gauges)
//	GET  /debug/pprof/           Go profiling endpoints (only with -pprof)
//
// Train a model first with `ucad train` (see cmd/ucad).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

func main() {
	modelPath := flag.String("model", "ucad.model", "trained model file (ucad train)")
	addr := flag.String("addr", ":8844", "HTTP listen address")
	workers := flag.Int("workers", 4, "scoring worker-pool size")
	queue := flag.Int("queue", 1024, "scoring queue capacity (backpressure bound)")
	batch := flag.Int("batch", 16, "scoring micro-batch size per worker pass")
	idle := flag.Duration("idle-timeout", 10*time.Minute, "close a client session after this inactivity")
	sweep := flag.Duration("sweep-every", 15*time.Second, "idle close-out sweep period")
	retrainAfter := flag.Int("retrain-after", 0, "fine-tune when the verified pool reaches this many sessions (0 disables)")
	retrainEpochs := flag.Int("retrain-epochs", 2, "epochs per fine-tune round")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel workers per fine-tune round (<=0 uses all CPUs)")
	batchSize := flag.Int("batch-size", 16, "windows per SGD step during fine-tune (gradients summed across the mini-batch)")
	maxResolved := flag.Int("max-resolved-alerts", 4096, "resolved alerts retained in memory (negative = unbounded)")
	resolvedTTL := flag.Duration("resolved-alert-ttl", 24*time.Hour, "evict resolved alerts after this age (negative disables)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots + model checkpoints); empty disables durability")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (durable per event), interval, never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL flush period under -fsync=interval")
	snapshotEvery := flag.Duration("snapshot-interval", time.Minute, "open-session snapshot/compaction period (0 disables the loop)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation cap in bytes")
	shutdownWait := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget on SIGTERM/SIGINT")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/")
	flag.Parse()

	// With durability on, boot prefers the newest fine-tune checkpoint
	// whose load succeeds — rolling the manifest back past any that a
	// crash or bug left unloadable — and falls back to -model.
	var ckpts *wal.Checkpoints
	if *dataDir != "" {
		var err error
		ckpts, err = wal.OpenCheckpoints(filepath.Join(*dataDir, "checkpoints"), 0)
		fatalIf(err)
	}
	u, from := loadModel(ckpts, *modelPath)
	fmt.Printf("model loaded from %s\n", from)
	// The persisted config keeps whatever parallelism the model was
	// trained with; the serving flags decide what fine-tune rounds use
	// on this host.
	u.Model.SetTrainParallelism(*trainWorkers, *batchSize)
	mcfg := u.Model.Config()
	fmt.Printf("model: vocab=%d window=%d top-p=%d (fine-tune: %d workers, batch %d)\n",
		mcfg.Vocab, mcfg.Window, mcfg.TopP, mcfg.EffectiveTrainWorkers(), *batchSize)

	cfg := serve.Config{
		Workers:           *workers,
		QueueSize:         *queue,
		Batch:             *batch,
		IdleTimeout:       *idle,
		SweepEvery:        *sweep,
		RetrainAfter:      *retrainAfter,
		RetrainEpochs:     *retrainEpochs,
		MaxResolvedAlerts: *maxResolved,
		ResolvedAlertTTL:  *resolvedTTL,
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		fatalIf(err)
		cfg.Durability = &serve.DurabilityConfig{
			Dir:           filepath.Join(*dataDir, "wal"),
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segmentBytes,
			SnapshotEvery: *snapshotEvery,
			Checkpoints:   ckpts,
		}
	}
	svc := serve.NewService(u, cfg)
	if cfg.Durability != nil {
		rst, err := svc.Restore()
		fatalIf(err)
		how := "clean shutdown"
		switch {
		case rst.CleanSeal:
		case rst.Records == 0 && rst.SnapshotSeq == 0 && rst.Sessions == 0:
			how = "fresh data dir"
		default:
			how = "crash recovery"
		}
		fmt.Printf("durability: %s restored %d open sessions (%s; %d WAL records replayed, fsync=%s)\n",
			*dataDir, rst.Sessions, how, rst.Records, *fsync)
	}
	svc.Start()

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *pprofOn {
		// Explicit registration keeps the profiling surface off unless
		// asked for — no blanket net/http/pprof DefaultServeMux import.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s with %d workers (queue %d, idle timeout %s)\n",
		*addr, *workers, *queue, *idle)
	fmt.Printf("observability: GET /metrics (Prometheus text)")
	if *pprofOn {
		fmt.Printf(", GET /debug/pprof/")
	}
	fmt.Println()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%s: draining...\n", sig)
	case err := <-errc:
		fatalIf(err)
	}

	// Quiesce ingestion first, then shut the service down gracefully:
	// with durability on, Close drains the queue, snapshots the open
	// sessions (they come back on the next boot) and seals the log; the
	// non-durable path flushes open sessions through close-out
	// detection instead.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	srv.Shutdown(ctx)
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ucad-serve: shutdown:", err)
	}
	st := svc.Stats()
	fmt.Printf("done: %d events, %d sessions closed, %d open preserved, %d flagged, %d alerts open\n",
		st.EventsAccepted, st.SessionsClosed, st.SessionsOpen, st.SessionsFlagged, st.AlertsOpen)
}

// loadModel prefers the newest loadable checkpoint, rolling back past
// rejected ones, and falls back to the trained model file.
func loadModel(ckpts *wal.Checkpoints, modelPath string) (*core.UCAD, string) {
	if ckpts != nil {
		for path := ckpts.Current(); path != ""; {
			u, err := loadModelFile(path)
			if err == nil {
				return u, path
			}
			fmt.Fprintf(os.Stderr, "ucad-serve: checkpoint %s rejected (%v), rolling back\n", path, err)
			next, rerr := ckpts.Rollback()
			fatalIf(rerr)
			path = next
		}
	}
	u, err := loadModelFile(modelPath)
	fatalIf(err)
	return u, modelPath
}

func loadModelFile(path string) (*core.UCAD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-serve:", err)
		os.Exit(1)
	}
}
