// Command ucad-serve runs the online detection loop of §5.2–§5.3 as an
// HTTP service: database frontends stream raw statement events in,
// sessions assemble per client, every operation is scored incrementally
// against a trained model, and flagged operations surface as alerts
// while the session is still active.
//
// Usage:
//
//	ucad-serve -model ucad.model [-addr :8844] [-workers 4] [-train-workers 0] [-batch-size 16] [-pprof]
//
// API:
//
//	POST /v1/events              {"client_id":"c1","user":"u","sql":"SELECT ..."} or a JSON array
//	GET  /v1/alerts?status=open  flagged sessions awaiting expert review
//	POST /v1/alerts/{id}/resolve {"verdict":"false_alarm"|"confirmed"}
//	GET  /healthz                liveness
//	GET  /stats                  serving counters (JSON)
//	GET  /metrics                Prometheus text exposition (latency histograms, counters, gauges)
//	GET  /debug/pprof/           Go profiling endpoints (only with -pprof)
//
// Train a model first with `ucad train` (see cmd/ucad).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
)

func main() {
	modelPath := flag.String("model", "ucad.model", "trained model file (ucad train)")
	addr := flag.String("addr", ":8844", "HTTP listen address")
	workers := flag.Int("workers", 4, "scoring worker-pool size")
	queue := flag.Int("queue", 1024, "scoring queue capacity (backpressure bound)")
	batch := flag.Int("batch", 16, "scoring micro-batch size per worker pass")
	idle := flag.Duration("idle-timeout", 10*time.Minute, "close a client session after this inactivity")
	sweep := flag.Duration("sweep-every", 15*time.Second, "idle close-out sweep period")
	retrainAfter := flag.Int("retrain-after", 0, "fine-tune when the verified pool reaches this many sessions (0 disables)")
	retrainEpochs := flag.Int("retrain-epochs", 2, "epochs per fine-tune round")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel workers per fine-tune round (<=0 uses all CPUs)")
	batchSize := flag.Int("batch-size", 16, "windows per SGD step during fine-tune (gradients summed across the mini-batch)")
	maxResolved := flag.Int("max-resolved-alerts", 4096, "resolved alerts retained in memory (negative = unbounded)")
	resolvedTTL := flag.Duration("resolved-alert-ttl", 24*time.Hour, "evict resolved alerts after this age (negative disables)")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/")
	flag.Parse()

	mf, err := os.Open(*modelPath)
	fatalIf(err)
	u, err := core.Load(mf)
	mf.Close()
	fatalIf(err)
	// The persisted config keeps whatever parallelism the model was
	// trained with; the serving flags decide what fine-tune rounds use
	// on this host.
	u.Model.SetTrainParallelism(*trainWorkers, *batchSize)
	mcfg := u.Model.Config()
	fmt.Printf("model loaded: vocab=%d window=%d top-p=%d (fine-tune: %d workers, batch %d)\n",
		mcfg.Vocab, mcfg.Window, mcfg.TopP, mcfg.EffectiveTrainWorkers(), *batchSize)

	svc := serve.NewService(u, serve.Config{
		Workers:           *workers,
		QueueSize:         *queue,
		Batch:             *batch,
		IdleTimeout:       *idle,
		SweepEvery:        *sweep,
		RetrainAfter:      *retrainAfter,
		RetrainEpochs:     *retrainEpochs,
		MaxResolvedAlerts: *maxResolved,
		ResolvedAlertTTL:  *resolvedTTL,
	})
	svc.Start()

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *pprofOn {
		// Explicit registration keeps the profiling surface off unless
		// asked for — no blanket net/http/pprof DefaultServeMux import.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s with %d workers (queue %d, idle timeout %s)\n",
		*addr, *workers, *queue, *idle)
	fmt.Printf("observability: GET /metrics (Prometheus text)")
	if *pprofOn {
		fmt.Printf(", GET /debug/pprof/")
	}
	fmt.Println()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%s: draining...\n", sig)
	case err := <-errc:
		fatalIf(err)
	}

	// Quiesce ingestion first, then flush open sessions through
	// close-out detection.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	svc.Stop()
	st := svc.Stats()
	fmt.Printf("done: %d events, %d sessions closed, %d flagged, %d alerts open\n",
		st.EventsAccepted, st.SessionsClosed, st.SessionsFlagged, st.AlertsOpen)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucad-serve:", err)
		os.Exit(1)
	}
}
