package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/feed"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/workload"
)

// tenantTraffic is one tenant's scripted audit stream: the JSONL lines
// in file order plus the per-client statement sequences they must end
// up as on any server that saw the whole stream exactly once.
type tenantTraffic struct {
	id    string
	lines []string
	want  map[string][]string // client -> ordered SQL
}

// buildTraffic flattens n scenario sessions into one interleaved audit
// log: clients take turns statement by statement, so cutting the file
// anywhere leaves every client mid-session — the failover has to carry
// live assembly state, not just closed history.
func buildTraffic(t *testing.T, id string, src workload.SessionSource, n int, base time.Time) tenantTraffic {
	t.Helper()
	tr := tenantTraffic{id: id, want: map[string][]string{}}
	type cursor struct {
		client string
		stmts  []string
	}
	var cur []cursor
	for i := 0; i < n; i++ {
		ss := src.NextSession()
		client := fmt.Sprintf("%s-c%d", id, i)
		cur = append(cur, cursor{client: client, stmts: ss.Statements})
		tr.want[client] = append([]string(nil), ss.Statements...)
	}
	for round, live := 0, true; live; round++ {
		live = false
		for _, c := range cur {
			if round >= len(c.stmts) {
				continue
			}
			live = true
			op := session.Operation{
				Time:      base.Add(time.Duration(len(tr.lines)) * time.Second),
				User:      "app",
				SessionID: c.client,
				SQL:       c.stmts[round],
			}
			b, err := json.Marshal(op)
			if err != nil {
				t.Fatal(err)
			}
			tr.lines = append(tr.lines, string(b))
		}
	}
	return tr
}

// appendLines appends audit lines to a (possibly new) tailed file.
func appendLines(t *testing.T, path string, lines []string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, ln := range lines {
		if _, err := f.WriteString(ln + "\n"); err != nil {
			t.Fatal(err)
		}
	}
}

// sessionView is the comparable shape of one exported open session.
type sessionView struct {
	Client string `json:"client"`
	Ops    []struct {
		SQL string `json:"sql"`
	} `json:"ops"`
}

// fetchSessions reads a tenant's open sessions as client -> ordered SQL.
func fetchSessions(base, tenant string) (map[string][]string, error) {
	resp, err := http.Get(base + "/v1/tenants/" + tenant + "/sessions")
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sessions %s = %d: %s", tenant, resp.StatusCode, body)
	}
	var views []sessionView
	if err := json.Unmarshal(body, &views); err != nil {
		return nil, fmt.Errorf("sessions %s: %v: %s", tenant, err, body)
	}
	out := map[string][]string{}
	for _, v := range views {
		for _, op := range v.Ops {
			out[v.Client] = append(out[v.Client], op.SQL)
		}
	}
	return out, nil
}

// sizes summarizes a session map as client:opcount for diagnostics.
func sizes(m map[string][]string) map[string]int {
	out := map[string]int{}
	for c, ops := range m {
		out[c] = len(ops)
	}
	return out
}

func sameSessions(got, want map[string][]string) bool {
	if len(got) != len(want) {
		return false
	}
	for client, stmts := range want {
		g, ok := got[client]
		if !ok || len(g) != len(stmts) {
			return false
		}
		for i := range stmts {
			if g[i] != stmts[i] {
				return false
			}
		}
	}
	return true
}

// TestE2EFailoverZeroLoss is the end-to-end failover story with real
// processes: a primary ships WAL to a warm standby while per-tenant
// feeders (failover URL lists, rewind enabled) stream interleaved
// multi-client traffic; the primary is kill -9ed mid-stream, the
// standby is promoted, and the feeders rotate, rewind and redeliver.
// A third, never-interrupted control server consumes the same audit
// logs; at the end every tenant's open sessions on the promoted
// standby must match the control exactly — zero loss, zero duplicates,
// statement order preserved.
func TestE2EFailoverZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	root := t.TempDir()

	// Two tenants with genuinely different vocabularies, two ingest
	// shards each so session ownership is spread across shards.
	saveModel(t, trainOn(t, workload.NewScenarioSource(workload.ScenarioI(), 201, 0), 12),
		filepath.Join(root, "s1.model"))
	saveModel(t, trainOn(t, workload.NewScenarioSource(workload.ScenarioII(0.5), 202, 0), 12),
		filepath.Join(root, "s2.model"))
	specs := []map[string]string{
		{"id": "s1", "model": filepath.Join(root, "s1.model")},
		{"id": "s2", "model": filepath.Join(root, "s2.model")},
	}
	sb, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	tenantsFile := filepath.Join(root, "tenants.json")
	if err := os.WriteFile(tenantsFile, sb, 0o644); err != nil {
		t.Fatal(err)
	}

	primaryAddr, standbyAddr, controlAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	primaryBase := "http://" + primaryAddr
	standbyBase := "http://" + standbyAddr
	controlBase := "http://" + controlAddr

	common := []string{
		"-workers", "2",
		"-shards", "2",
		"-queue", "4096",
		// Sessions must stay open across the failover: no idle close-outs.
		"-sweep-every", "1h",
		"-idle-timeout", "1h",
	}
	// Tiny segments and a fast snapshot loop so the primary seals and
	// ships continuously under this small stream.
	primary := startChild(t, append([]string{
		"-tenants", tenantsFile,
		"-data-dir", filepath.Join(root, "primary"),
		"-addr", primaryAddr,
		"-fsync", "always",
		"-segment-bytes", "1024",
		"-snapshot-interval", "300ms",
	}, common...)...)
	defer primary.cmd.Process.Kill()
	standby := startChild(t, append([]string{
		"-data-dir", filepath.Join(root, "standby"),
		"-addr", standbyAddr,
		"-replicate-from", primaryBase,
		"-replica-poll", "100ms",
		"-fsync", "always",
		"-segment-bytes", "1024",
		"-snapshot-interval", "300ms",
	}, common...)...)
	defer standby.cmd.Process.Kill()
	control := startChild(t, append([]string{
		"-tenants", tenantsFile,
		"-addr", controlAddr,
	}, common...)...)
	defer control.cmd.Process.Kill()
	waitHealthy(t, primary, primaryBase)
	waitHealthy(t, standby, standbyBase)
	waitHealthy(t, control, controlBase)

	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Fatalf(format+"\n--- primary ---\n%s\n--- standby ---\n%s\n--- control ---\n%s",
			append(args, primary.log(), standby.log(), control.log())...)
	}
	var lastDiff string
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fail("timed out waiting for %s (%s)", what, lastDiff)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	traffic := []tenantTraffic{
		buildTraffic(t, "s1", workload.NewScenarioSource(workload.ScenarioI(), 11, 0.1), 6, base),
		buildTraffic(t, "s2", workload.NewScenarioSource(workload.ScenarioII(0.5), 12, 0.1), 6, base),
	}

	// First half of each tenant's stream lands before the crash — cut
	// mid-file, so every client is mid-session when the primary dies.
	logPath := func(id string) string { return filepath.Join(root, id+".audit.jsonl") }
	for _, tr := range traffic {
		appendLines(t, logPath(tr.id), tr.lines[:len(tr.lines)/2])
	}

	// One failover feeder per tenant (primary first, standby second) and
	// one control feeder tailing the same file into the control server.
	// The huge rewind window pins the failover point at the stream's
	// start: the standby must dedupe the whole replicated prefix and
	// append only the tail the primary never shipped.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runningFeeder struct {
		name string
		done chan error
	}
	var feeders []runningFeeder
	startFeeder := func(name, tenant string, urls []string, rewind time.Duration) {
		tl, err := feed.NewTailer(feed.TailerConfig{Path: logPath(tenant), Poll: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tl.Close() })
		f, err := feed.NewFeeder(feed.FeederConfig{
			Source: tl,
			Deliver: &feed.HTTPDeliverer{
				URL:     urls[0],
				URLs:    urls,
				Tenant:  tenant,
				Backoff: feed.Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond},
			},
			Tenant:         tenant,
			CheckpointPath: filepath.Join(root, name+".ckpt"),
			BatchSize:      8,
			FlushInterval:  10 * time.Millisecond,
			Idle:           time.Hour,
			FailoverRewind: rewind,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- f.Run(ctx) }()
		feeders = append(feeders, runningFeeder{name: name, done: done})
	}
	for _, tr := range traffic {
		startFeeder(tr.id+"-failover", tr.id, []string{primaryBase, standbyBase}, time.Hour)
		startFeeder(tr.id+"-control", tr.id, []string{controlBase}, 0)
	}

	// Primary absorbs the first half; the standby mirrors both tenants
	// (it must know them before the crash so redelivery routes) and has
	// completed sync rounds against the live primary.
	firstHalf := map[string]int{}
	for _, tr := range traffic {
		firstHalf[tr.id] = len(tr.lines) / 2
	}
	waitFor("primary to absorb the first half", func() bool {
		infos := listTenants(t, primaryBase)
		for id, n := range firstHalf {
			if int(infos[id].Stats.EventsAccepted) < n {
				return false
			}
		}
		return true
	})
	waitFor("standby to mirror both tenants", func() bool {
		resp, err := http.Get(standbyBase + "/v1/replication")
		if err != nil {
			return false
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			Rounds  int64 `json:"rounds"`
			Tenants []struct {
				ID string `json:"id"`
			} `json:"tenants"`
		}
		if json.Unmarshal(body, &st) != nil {
			return false
		}
		return st.Rounds > 0 && len(st.Tenants) == len(traffic)
	})

	// kill -9 mid-stream: the active segment's unshipped tail dies with
	// the process; only the feeders can close that gap.
	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()

	// The rest of the stream arrives while the primary is a corpse and
	// the standby still refuses ingest (not promoted): the feeders park
	// on retryable errors, losing nothing.
	for _, tr := range traffic {
		appendLines(t, logPath(tr.id), tr.lines[len(tr.lines)/2:])
	}
	time.Sleep(200 * time.Millisecond)

	// Flip the switch.
	resp, err := http.Post(standbyBase+"/v1/promote", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("promote = %d: %s", resp.StatusCode, pbody)
	}
	for _, tr := range traffic {
		if !strings.Contains(string(pbody), tr.id) {
			fail("promote response %s does not name tenant %s", pbody, tr.id)
		}
	}

	// Convergence: the promoted standby's open sessions match the
	// uninterrupted control server for every tenant — and both match the
	// scripted stream, so this is zero loss and zero duplication, not
	// two servers sharing the same hole.
	waitFor("standby and control sessions to converge on the full stream", func() bool {
		for _, tr := range traffic {
			got, err := fetchSessions(standbyBase, tr.id)
			if err != nil || !sameSessions(got, tr.want) {
				lastDiff = fmt.Sprintf("standby %s: err=%v got=%v want=%v", tr.id, err, sizes(got), sizes(tr.want))
				return false
			}
			ctrl, err := fetchSessions(controlBase, tr.id)
			if err != nil || !sameSessions(ctrl, tr.want) {
				lastDiff = fmt.Sprintf("control %s: err=%v got=%v want=%v", tr.id, err, sizes(ctrl), sizes(tr.want))
				return false
			}
		}
		return true
	})

	// The feeders are healthy tails, not crashed loops: cancel and
	// require clean context exits.
	cancel()
	for _, rf := range feeders {
		select {
		case err := <-rf.done:
			if err != nil && !errors.Is(err, context.Canceled) {
				fail("feeder %s exited: %v", rf.name, err)
			}
		case <-time.After(10 * time.Second):
			fail("feeder %s did not stop", rf.name)
		}
	}

	// The promoted standby keeps serving: one more statement onto an
	// existing client of each tenant is accepted like any primary would.
	for _, tr := range traffic {
		client := tr.id + "-c0"
		b, _ := json.Marshal(map[string]string{
			"tenant": tr.id, "client_id": client, "user": "app", "sql": "SELECT 1",
		})
		resp, err := http.Post(standbyBase+"/v1/events", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			fail("post-promotion ingest %s = %d", tr.id, resp.StatusCode)
		}
	}

	standby.cmd.Process.Signal(os.Interrupt)
	standby.cmd.Wait()
	control.cmd.Process.Kill()
	control.cmd.Wait()
}
