package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/workload"
)

// The end-to-end test re-executes this test binary as the real
// ucad-serve process: TestMain detects the child marker, rewrites
// os.Args from the env, and runs main(). The parent can then kill -9 a
// genuine OS process and watch a genuine restart recover it.
const (
	childEnv     = "UCAD_SERVE_E2E_CHILD"
	childArgsEnv = "UCAD_SERVE_E2E_ARGS"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Args = append([]string{os.Args[0]}, strings.Split(os.Getenv(childArgsEnv), "\n")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// trainOn fits a tiny detector to n sessions drawn from a source — each
// tenant of the e2e gets a model of its own scenario's vocabulary.
func trainOn(t *testing.T, src workload.SessionSource, n int) *core.UCAD {
	t.Helper()
	var sessions []*session.Session
	for i := 0; i < n; i++ {
		ss := src.NextSession()
		s := &session.Session{ID: ss.ClientID, User: ss.User, Addr: ss.Addr}
		for _, sql := range ss.Statements {
			s.Ops = append(s.Ops, session.Operation{SQL: sql})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 1
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func saveModel(t *testing.T, u *core.UCAD, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := u.Save(f); err != nil {
		t.Fatal(err)
	}
}

// child is one ucad-serve process run from the test binary.
type child struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	mu  sync.Mutex
}

func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	c := &child{cmd: exec.Command(os.Args[0]), out: &bytes.Buffer{}}
	c.cmd.Env = append(os.Environ(), childEnv+"=1", childArgsEnv+"="+strings.Join(args, "\n"))
	c.cmd.Stdout = lockedWriter{c}
	c.cmd.Stderr = lockedWriter{c}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

// lockedWriter serializes the child's stdout/stderr into one buffer.
type lockedWriter struct{ c *child }

func (w lockedWriter) Write(p []byte) (int, error) {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	return w.c.out.Write(p)
}

func (c *child) log() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.String()
}

func waitHealthy(t *testing.T, c *child, base string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server never became healthy; child output:\n%s", c.log())
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type tenantInfo struct {
	ID          string `json:"id"`
	Recovered   int    `json:"recovered_sessions"`
	CleanSeal   bool   `json:"clean_seal"`
	WALReplayed int    `json:"wal_records_replayed"`
	Stats       struct {
		EventsAccepted int64 `json:"events_accepted"`
	} `json:"stats"`
}

func listTenants(t *testing.T, base string) map[string]tenantInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var infos []tenantInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("tenant list: %v: %s", err, body)
	}
	out := map[string]tenantInfo{}
	for _, in := range infos {
		out[in.ID] = in
	}
	return out
}

// TestE2EMultiTenantCrashRestart boots one real ucad-serve process with
// three tenants — Scenario-I, Scenario-II, and an HDFS-like syslog
// stream — ingests interleaved traffic across all three, kill -9s the
// process, restarts it on the same data directory, and verifies each
// tenant recovered exactly its own sessions with its own metric labels
// and kept serving. A final SIGTERM restart confirms the clean-seal
// path through the real binary.
func TestE2EMultiTenantCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	root := t.TempDir()

	// One model per tenant, each trained on its own scenario so the
	// vocabularies are genuinely disjoint.
	s1Train := workload.NewScenarioSource(workload.ScenarioI(), 101, 0)
	s2Train := workload.NewScenarioSource(workload.ScenarioII(0.5), 102, 0)
	logTrain, err := workload.NewLogSource("hdfs", 103, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id, src := range map[string]workload.SessionSource{
		"s1": s1Train, "s2": s2Train, "logs": logTrain,
	} {
		saveModel(t, trainOn(t, src, 12), filepath.Join(root, id+".model"))
	}
	specs := []map[string]string{
		{"id": "s1", "model": filepath.Join(root, "s1.model")},
		{"id": "s2", "model": filepath.Join(root, "s2.model")},
		{"id": "logs", "model": filepath.Join(root, "logs.model")},
	}
	sb, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	tenantsFile := filepath.Join(root, "tenants.json")
	if err := os.WriteFile(tenantsFile, sb, 0o644); err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(root, "data")
	addr := freeAddr(t)
	base := "http://" + addr
	args := []string{
		"-tenants", tenantsFile,
		"-data-dir", dataDir,
		"-addr", addr,
		"-fsync", "always",
		"-workers", "2",
		"-queue", "4096",
		// Sessions must stay open across the crash: no idle close-outs.
		"-sweep-every", "1h",
		"-idle-timeout", "1h",
		"-snapshot-interval", "0",
	}

	c1 := startChild(t, args...)
	defer c1.cmd.Process.Kill()
	waitHealthy(t, c1, base)

	// Interleave the three tenants' live traffic into one stream, the
	// shape a shared frontend would produce.
	hdfsLive, err := workload.NewLogSource("hdfs", 7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewMultiGen(99,
		workload.TenantStream{Tenant: "s1", Source: workload.NewScenarioSource(workload.ScenarioI(), 1, 0)},
		workload.TenantStream{Tenant: "s2", Source: workload.NewScenarioSource(workload.ScenarioII(0.5), 2, 0)},
		workload.TenantStream{Tenant: "logs", Source: hdfsLive},
	)
	events := gen.Take(300)
	sent := map[string]int{}
	clients := map[string]map[string]bool{}
	for _, ev := range events {
		b, _ := json.Marshal(map[string]string{
			"tenant": ev.Tenant, "client_id": ev.ClientID, "user": ev.User, "addr": ev.Addr, "sql": ev.SQL,
		})
		resp, err := http.Post(base+"/v1/events", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %s = %d; child output:\n%s", ev.Tenant, resp.StatusCode, c1.log())
		}
		sent[ev.Tenant]++
		if clients[ev.Tenant] == nil {
			clients[ev.Tenant] = map[string]bool{}
		}
		clients[ev.Tenant][ev.ClientID] = true
	}
	for _, id := range []string{"s1", "s2", "logs"} {
		if sent[id] == 0 {
			t.Fatalf("stream never reached tenant %s", id)
		}
	}

	// kill -9: with fsync=always every acknowledged event is already in
	// the owning tenant's WAL.
	if err := c1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c1.cmd.Wait()

	// Restart on the same directory: the tenants file names the same
	// specs; each tenant replays its own WAL.
	c2 := startChild(t, args...)
	defer c2.cmd.Process.Kill()
	waitHealthy(t, c2, base)

	infos := listTenants(t, base)
	if len(infos) != 3 {
		t.Fatalf("restart lists %d tenants: %+v", len(infos), infos)
	}
	for _, id := range []string{"s1", "s2", "logs"} {
		in, ok := infos[id]
		if !ok {
			t.Fatalf("tenant %s missing after restart: %+v", id, infos)
		}
		if in.CleanSeal {
			t.Fatalf("tenant %s reports a clean seal after kill -9", id)
		}
		if in.Recovered != len(clients[id]) {
			t.Fatalf("tenant %s recovered %d sessions, want %d (no more, no fewer — cross-tenant leakage otherwise)",
				id, in.Recovered, len(clients[id]))
		}
		if in.WALReplayed < sent[id] {
			t.Fatalf("tenant %s replayed %d WAL records for %d events", id, in.WALReplayed, sent[id])
		}
		// Each tenant's durable state lives in its own directory.
		for _, sub := range []string{"wal", "checkpoints", "tenant.json"} {
			if _, err := os.Stat(filepath.Join(dataDir, "tenants", id, sub)); err != nil {
				t.Fatalf("tenant %s: %v", id, err)
			}
		}
	}

	// The recovered pipelines keep serving: one more event per tenant
	// onto a recovered client id.
	for _, ev := range []workload.TenantEvent{events[0], events[1], events[2]} {
		b, _ := json.Marshal(map[string]string{
			"tenant": ev.Tenant, "client_id": ev.ClientID, "user": ev.User, "sql": ev.SQL,
		})
		resp, err := http.Post(base+"/v1/events", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("post-restart ingest %s = %d", ev.Tenant, resp.StatusCode)
		}
	}

	// The shared exposition carries every tenant's labelled series —
	// including the per-tenant recovery gauges.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, id := range []string{"s1", "s2", "logs"} {
		for _, series := range []string{
			fmt.Sprintf(`ucad_wal_recovered_sessions{tenant=%q} %d`, id, len(clients[id])),
			fmt.Sprintf(`ucad_events_accepted_total{tenant=%q}`, id),
		} {
			if !strings.Contains(string(mbody), series) {
				t.Fatalf("/metrics missing %q", series)
			}
		}
	}
	// Routing misses answer the structured 404 end to end.
	gresp, err := http.Post(base+"/v1/events", "application/json",
		strings.NewReader(`{"tenant":"ghost","client_id":"c","user":"u","sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	gbody, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound || !strings.Contains(string(gbody), "unknown_tenant") {
		t.Fatalf("ghost tenant = %d: %s", gresp.StatusCode, gbody)
	}

	// Graceful shutdown seals every tenant's log; the next boot reports
	// clean seals with the same per-tenant session counts.
	if err := c2.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := c2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown: %v; output:\n%s", err, c2.log())
	}
	c3 := startChild(t, args...)
	defer c3.cmd.Process.Kill()
	waitHealthy(t, c3, base)
	for _, id := range []string{"s1", "s2", "logs"} {
		in := listTenants(t, base)[id]
		if !in.CleanSeal || in.Recovered != len(clients[id]) {
			t.Fatalf("tenant %s after clean shutdown: %+v, want clean seal and %d sessions",
				id, in, len(clients[id]))
		}
	}
	c3.cmd.Process.Signal(os.Interrupt)
	c3.cmd.Wait()
}
