// Command ucad-experiments regenerates the paper's tables and figures
// on the synthetic workloads.
//
// Usage:
//
//	ucad-experiments -all                 # everything at demo scale
//	ucad-experiments -table 2 -scale quick
//	ucad-experiments -figure 8 -scale paper -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ucad/ucad/internal/experiments"
	"github.com/ucad/ucad/internal/transdas"
)

func main() {
	scale := flag.String("scale", "demo", "experiment scale: quick, demo or paper")
	table := flag.Int("table", 0, "regenerate one table (1-7; 7 is the A1-A6 attack-taxonomy table)")
	figure := flag.Int("figure", 0, "regenerate one figure (6-8)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	seed := flag.Int64("seed", 1, "random seed")
	precision := flag.String("score-precision", "float64", "scoring kernel for UCAD detectors: float64 (reference) or float32 (fast path)")
	cacheSize := flag.Int("score-cache-size", 0, "similarity rows memoized per fitted detector (0 disables; evaluation contexts rarely repeat)")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	switch *scale {
	case "quick":
		opt.Scale = experiments.ScaleQuick
	case "demo":
		opt.Scale = experiments.ScaleDemo
	case "paper":
		opt.Scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	prec, err := transdas.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.ScorePrecision = prec
	opt.ScoreCacheSize = *cacheSize
	if prec != transdas.PrecisionFloat64 || *cacheSize > 0 {
		fmt.Printf("scoring path: %s kernel, score cache %d rows\n\n", prec, *cacheSize)
	}

	w := os.Stdout
	run := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Fprintf(w, "[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	ran := false
	if *all || *table == 1 {
		run("Table 1", func() { experiments.Table1(opt, w) })
		ran = true
	}
	if *all || *table == 2 {
		run("Table 2", func() { experiments.Table2(opt, w) })
		ran = true
	}
	if *all || *table == 3 {
		run("Table 3", func() { experiments.Table3(opt, w) })
		ran = true
	}
	if *all || *table == 4 {
		run("Table 4", func() { experiments.Table4(opt, w) })
		ran = true
	}
	if *all || *table == 5 {
		run("Table 5", func() { experiments.Table5(opt, w) })
		ran = true
	}
	if *all || *table == 6 {
		run("Table 6", func() { experiments.Table6(opt, w) })
		ran = true
	}
	if *all || *table == 7 {
		run("Table 7", func() { experiments.TableAttacks(opt, w) })
		ran = true
	}
	if *all || *figure == 6 {
		run("Figure 6", func() { experiments.Figure6(opt, w) })
		ran = true
	}
	if *all || *figure == 7 {
		run("Figure 7", func() { experiments.Figure7(opt, w) })
		ran = true
	}
	if *all || *figure == 8 {
		run("Figure 8", func() { experiments.Figure8(opt, w) })
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
