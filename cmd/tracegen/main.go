// Command tracegen writes synthetic database audit logs for the two
// paper scenarios, optionally with injected anomalies.
//
// Usage:
//
//	tracegen -scenario 1 -sessions 354 -out train.jsonl
//	tracegen -scenario 2 -sessions 100 -anomalies a2 -out mixed.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/workload"
)

func main() {
	scenario := flag.Int("scenario", 1, "scenario to synthesize (1 or 2)")
	sessions := flag.Int("sessions", 100, "number of normal sessions")
	anomalies := flag.String("anomalies", "", "comma list of anomaly kinds to inject (a1,a2,a3), one per 10 normal sessions")
	richness := flag.Float64("richness", 0.2, "scenario 2 template richness (0,1]")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var spec workload.Spec
	switch *scenario {
	case 1:
		spec = workload.ScenarioI()
	case 2:
		spec = workload.ScenarioII(*richness)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: scenario must be 1 or 2")
		os.Exit(2)
	}
	g := workload.NewGenerator(spec, *seed)
	all := g.GenerateSessions(*sessions)

	for _, kind := range strings.Split(*anomalies, ",") {
		kind = strings.TrimSpace(strings.ToLower(kind))
		if kind == "" {
			continue
		}
		for i := 0; i < *sessions/10+1; i++ {
			victim := all[(i*7)%len(all)]
			switch kind {
			case "a1":
				all = append(all, g.AbusePrivilege(victim))
			case "a2":
				all = append(all, g.StealCredential(victim))
			case "a3":
				all = append(all, g.Misoperate(spec.AvgLen))
			default:
				fmt.Fprintf(os.Stderr, "tracegen: unknown anomaly kind %q\n", kind)
				os.Exit(2)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := session.WriteLog(w, session.Flatten(all)); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d sessions\n", len(all))
}
