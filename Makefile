GO ?= go

# Where the bench/load smoke runs land their machine-readable results.
BENCH_OUT ?= BENCH_PR10.json
LOAD_OUT ?= BENCH_LOAD.json

.PHONY: all build vet test race check equiv32 fuzz-smoke bench bench-smoke load-smoke serve-bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short skips the slow experiment-reproduction sweeps (serial model
# training, no concurrency to check) which exceed the go test timeout
# under the race detector's slowdown; every concurrent package (obs,
# serve, detect, transdas) runs in full.
race:
	$(GO) test -race -short ./...

# A short coverage-guided pass over the WAL record decoder — the one
# parser that must never panic on arbitrary bytes (it reads crash
# debris on every recovery).
fuzz-smoke:
	$(GO) test -fuzz=FuzzRecordDecode -fuzztime=10s -run='^$$' ./internal/wal/

# The float32 scoring kernel's contract: similarity scores within 1e-4
# of the float64 reference with stable ranks/verdicts, plus bitwise
# parity of the packed-SSE kernels against the portable ones. Run
# without -short so the Scenario-II shape (the paper model's h=64 m=8
# head width, which exercises the packed attention kernels) is covered.
equiv32:
	$(GO) test -count=1 -run 'TestFloat32' ./internal/transdas/
	$(GO) test -count=1 -run 'TestMatMul32AsmMatchesGeneric|TestAttnKernels8' ./internal/tensor/

# The CI gate: static checks plus the suite under the race detector
# (the serving layer is heavily concurrent), the float32 equivalence
# contract, and the WAL decoder fuzz smoke.
check: vet build race equiv32 fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# A fast scoring/training-benchmark pass (sub-minute) that CI runs on
# every build: it does not gate on throughput numbers, but catches hot
# paths that break outright or regress catastrophically. The combined
# text output is converted to $(BENCH_OUT) (serve throughput across
# the ingest-shard matrix shards={1,4,8} at workers=8, 4-tenant routed
# ingest, feed front-door lines/sec, batch scoring in both precisions,
# the memoized scoring sweep across hit rates — each sub-run reports
# its measured hit% — and training windows/sec) for the CI artifact.
bench-smoke:
	{ \
	  $(GO) test -bench='BenchmarkScoreBatch|BenchmarkScoreBatch32|BenchmarkScoreCached|BenchmarkDetectionScore|BenchmarkServeThroughput|BenchmarkFeedThroughput' -benchtime=100ms -run='^$$' . && \
	  $(GO) test -bench=BenchmarkTrainEpoch -benchtime=1x -benchmem -run='^$$' . && \
	  $(GO) test -bench=BenchmarkScoreSequentialTape -benchtime=100ms -run='^$$' ./internal/transdas/ ; \
	} | tee bench-smoke.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench-smoke.out
	@rm -f bench-smoke.out

# A ~20s sustained-load smoke on the closed-loop harness: ucad-loadgen
# drives the in-process serving plane at a fixed rate (token-bucket
# paced, MultiGen traffic over 2 tenants) and reports throughput,
# p50/p99 ingest latency and allocation rates as one go-bench-shaped
# line, converted to $(LOAD_OUT). Like bench-smoke it does not gate on
# numbers — it catches the load path breaking outright.
load-smoke:
	$(GO) run ./cmd/ucad-loadgen -rate 1500 -duration 15s | tee load-smoke.out
	$(GO) run ./cmd/benchjson -o $(LOAD_OUT) < load-smoke.out
	@rm -f load-smoke.out

serve-bench:
	$(GO) test -bench=BenchmarkServeThroughput -benchmem -run='^$$' .

clean:
	$(GO) clean ./...
