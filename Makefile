GO ?= go

.PHONY: all build vet test race check bench serve-bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI gate: static checks plus the full suite under the race
# detector (the serving layer is heavily concurrent).
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

serve-bench:
	$(GO) test -bench=BenchmarkServeThroughput -benchmem -run='^$$' .

clean:
	$(GO) clean ./...
